//! `cmocc` — the command-line face of the framework, styled after the
//! HP-UX compiler driver the paper describes (§3, §6.1).
//!
//! ```text
//! usage: cmocc [options] <file.mlc | file.cmo>...
//!
//!   -c                 compile sources to IL objects (.cmo) and stop
//!   +O1 | +O2 | +O4    optimization level           (default +O2)
//!   +P <profile.db>    use profile data (PBO)
//!   +I                 instrument for profiling
//!   --sel <percent>    call-site selectivity at +O4
//!   --budget <MiB>     NAIM optimizer memory budget
//!   -j, --jobs <N>     worker threads for front-end and LLO fan-out
//!                      (output is byte-identical at every N)
//!   --shards <N>       NAIM loader shard count (independent of -j)
//!   --run <v1,v2,...>  execute main with the given input stream
//!   --profile-out <f>  after --run of an instrumented build, write
//!                      the profile database to <f>
//!   --emit-asm         print a disassembly of the linked image
//!   --report           print the build report
//!   --report-json <f>  write the unified cmo.report.v1 JSON report
//!   --trace <f>        write the cmo.trace.v1 event trace (JSONL)
//!   --cache-dir <dir>  persistent incremental cache: unchanged
//!                      modules skip the front end, an unchanged build
//!                      replays the linked image and report
//!   --no-cache         explicitly disable caching (conflicts with
//!                      --cache-dir)
//!   --no-mmap          disable the repository's memory-mapped read
//!                      path; fetches copy through an arena buffer
//!                      instead (reports are byte-identical either
//!                      way; requires --cache-dir)
//!   --gc-cache         mark-and-sweep compaction of the cache
//!                      repository: live records are copied into a
//!                      fresh generation and the old one is atomically
//!                      swapped out (requires --cache-dir; with no
//!                      input files, runs the compaction and exits)
//!   --gc-threshold-bytes <N>
//!                      auto-compact before a cached build whenever
//!                      the repository carries more than N dead bytes
//!                      (requires --cache-dir)
//!   --remote-cache <addr>
//!                      two-tier cache: local misses read through a
//!                      cmocached daemon at <addr> (host:port) and
//!                      committed records write through to it; a
//!                      remote outage demotes the build to local-only
//!                      and never fails it (requires --cache-dir)
//!   --remote-timeout-ms <N>
//!                      per-operation remote socket timeout in
//!                      milliseconds (default 1000; requires
//!                      --remote-cache)
//!   --remote-retries <N>
//!                      extra attempts per failed remote operation,
//!                      backed off on a deterministic seeded schedule
//!                      (default 2; requires --remote-cache)
//!   --profile-slice-granularity <module|cluster|whole>
//!                      how +P profile data projects onto cache keys:
//!                      each module's entry composes the fingerprint
//!                      of the profile slice its routines (and, at
//!                      `cluster`, its hot cross-module partners) can
//!                      observe, so a retrain invalidates only the
//!                      modules whose counts moved (default cluster;
//!                      requires +P and --cache-dir)
//!   --keep-going       degraded mode: a failing module becomes a
//!                      diagnostic, the remaining modules still build
//!                      (and cache); the image links only if all
//!                      modules succeed
//!   --isolate          binary-search the first inline operation that
//!                      changes behaviour on the --run input (§6.3);
//!                      requires --run and +O4
//! ```
//!
//! Sources compile to IL objects; objects feed the optimizing link.
//! Mixing `.mlc` and pre-compiled `.cmo` files on one command line is
//! the `make` flow of §6.1.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | compile/run diagnostics (including `--keep-going` with failures) |
//! | 2 | usage or flag errors |
//! | 3 | success, but storage corruption was recovered and rebuilt |
//! | 101 | internal bug (uncontained panic) |

use cmo::{
    build_objects_cached, BuildCache, BuildError, BuildOptions, CompileReport, DiskStorage,
    FaultStats, ModuleScope, NaimConfig, OptLevel, ProfileDb, RemoteStorage, RetryPolicy,
    SliceGranularity, SlicePlan, Storage, TcpTransport, Telemetry, TieredStorage, TraceEvent,
};
use cmo_ir::IlObject;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    inputs: Vec<PathBuf>,
    compile_only: bool,
    level: OptLevel,
    profile: Option<PathBuf>,
    instrument: bool,
    selectivity: Option<f64>,
    budget_bytes: Option<usize>,
    jobs: usize,
    shards: Option<usize>,
    run: Option<Vec<i64>>,
    profile_out: Option<PathBuf>,
    emit_asm: bool,
    report: bool,
    report_json: Option<PathBuf>,
    trace: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    no_mmap: bool,
    gc_cache: bool,
    gc_threshold_bytes: Option<u64>,
    remote_cache: Option<String>,
    remote_timeout_ms: Option<u64>,
    remote_retries: Option<u32>,
    slice_granularity: Option<SliceGranularity>,
    keep_going: bool,
    isolate: bool,
}

/// A diagnosed failure carrying its exit code: 1 for compile/run
/// diagnostics, 2 for usage errors, 101 reserved for internal bugs
/// (reached by letting the panic escape, never constructed here).
struct Failure {
    code: u8,
    msg: String,
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure { code: 1, msg }
    }
}

fn usage() -> String {
    "usage: cmocc [-c] [+O1|+O2|+O4] [+P <db>] [+I] [--sel <pct>] [--budget <MiB>] \
     [-j <N>] [--shards <N>] [--run <v1,v2,..>] [--profile-out <f>] [--emit-asm] [--report] \
     [--report-json <f>] [--trace <f>] [--cache-dir <dir>] [--no-cache] [--no-mmap] \
     [--gc-cache] [--gc-threshold-bytes <N>] [--remote-cache <addr>] [--remote-timeout-ms <N>] \
     [--remote-retries <N>] [--profile-slice-granularity <module|cluster|whole>] [--keep-going] \
     [--isolate] <files...>"
        .to_owned()
}

/// Checks the mutual-exclusion and dependency rules between flags.
/// Every violation is a diagnostic plus exit code 2 — never a panic or
/// a silently ignored option.
fn validate(cli: &Cli) -> Result<(), String> {
    if cli.compile_only {
        let conflicts: &[(&str, bool)] = &[
            ("--run", cli.run.is_some()),
            ("--profile-out", cli.profile_out.is_some()),
            ("--emit-asm", cli.emit_asm),
            ("--report", cli.report),
            ("--report-json", cli.report_json.is_some()),
            ("--trace", cli.trace.is_some()),
            ("--isolate", cli.isolate),
        ];
        for (flag, given) in conflicts {
            if *given {
                return Err(format!(
                    "{flag} conflicts with -c: compile-only builds produce no linked image"
                ));
            }
        }
    }
    if cli.no_cache && cli.cache_dir.is_some() {
        return Err("--no-cache conflicts with --cache-dir: pick one caching behaviour".to_owned());
    }
    if cli.no_mmap && cli.cache_dir.is_none() {
        return Err(
            "--no-mmap requires --cache-dir (it selects how the cache repository reads records)"
                .to_owned(),
        );
    }
    if cli.gc_cache && cli.cache_dir.is_none() {
        return Err(
            "--gc-cache requires --cache-dir (it compacts that cache's repository)".to_owned(),
        );
    }
    if cli.gc_threshold_bytes.is_some() && cli.cache_dir.is_none() {
        return Err(
            "--gc-threshold-bytes requires --cache-dir (it compacts that cache's repository)"
                .to_owned(),
        );
    }
    if cli.remote_cache.is_some() && cli.cache_dir.is_none() {
        return Err(
            "--remote-cache requires --cache-dir (the remote tier populates the local cache)"
                .to_owned(),
        );
    }
    if cli.remote_timeout_ms.is_some() && cli.remote_cache.is_none() {
        return Err(
            "--remote-timeout-ms requires --remote-cache (it bounds that daemon's operations)"
                .to_owned(),
        );
    }
    if cli.remote_retries.is_some() && cli.remote_cache.is_none() {
        return Err(
            "--remote-retries requires --remote-cache (it bounds that daemon's operations)"
                .to_owned(),
        );
    }
    if cli.slice_granularity.is_some() && (cli.profile.is_none() || cli.cache_dir.is_none()) {
        return Err(
            "--profile-slice-granularity requires +P and --cache-dir (it projects that profile \
             onto that cache's keys)"
                .to_owned(),
        );
    }
    if cli.gc_cache && cli.inputs.is_empty() {
        let conflicts: &[(&str, bool)] = &[
            ("-c", cli.compile_only),
            ("--run", cli.run.is_some()),
            ("--emit-asm", cli.emit_asm),
            ("--report", cli.report),
            ("--report-json", cli.report_json.is_some()),
            ("--isolate", cli.isolate),
        ];
        for (flag, given) in conflicts {
            if *given {
                return Err(format!(
                    "{flag} conflicts with standalone --gc-cache: no build runs without input files"
                ));
            }
        }
    }
    if cli.profile_out.is_some() && cli.run.is_none() {
        return Err("--profile-out requires --run (profiles come from executing main)".to_owned());
    }
    if cli.isolate {
        if cli.run.is_none() {
            return Err("--isolate requires --run (isolation compares run checksums)".to_owned());
        }
        if cli.level != OptLevel::O4 {
            return Err("--isolate requires +O4 (it searches the inliner's op limit)".to_owned());
        }
        if cli.instrument {
            return Err("--isolate conflicts with +I: probes perturb the checksum".to_owned());
        }
    }
    if let Some(sel) = cli.selectivity {
        if !sel.is_finite() || !(0.0..=100.0).contains(&sel) {
            return Err(format!(
                "bad --sel value: {sel} (expected a percentage in [0, 100])"
            ));
        }
    }
    Ok(())
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        compile_only: false,
        level: OptLevel::O2,
        profile: None,
        instrument: false,
        selectivity: None,
        budget_bytes: None,
        jobs: 1,
        shards: None,
        run: None,
        profile_out: None,
        emit_asm: false,
        report: false,
        report_json: None,
        trace: None,
        cache_dir: None,
        no_cache: false,
        no_mmap: false,
        gc_cache: false,
        gc_threshold_bytes: None,
        remote_cache: None,
        remote_timeout_ms: None,
        remote_retries: None,
        slice_granularity: None,
        keep_going: false,
        isolate: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{a} expects {what}"))
        };
        match a.as_str() {
            "-c" => cli.compile_only = true,
            "+O1" => cli.level = OptLevel::O1,
            "+O2" => cli.level = OptLevel::O2,
            "+O4" => cli.level = OptLevel::O4,
            "+P" => cli.profile = Some(PathBuf::from(next("a profile database path")?)),
            "+I" => cli.instrument = true,
            "--sel" => {
                cli.selectivity = Some(
                    next("a percentage")?
                        .parse()
                        .map_err(|e| format!("bad --sel value: {e}"))?,
                );
            }
            "--budget" => {
                let mib: usize = next("a size in MiB")?
                    .parse()
                    .map_err(|e| format!("bad --budget value: {e}"))?;
                // A checked conversion: 2^44 MiB would overflow the
                // byte count and (pre-fix) panic in debug builds or
                // silently wrap in release builds.
                cli.budget_bytes = Some(
                    mib.checked_mul(1 << 20)
                        .ok_or_else(|| format!("bad --budget value: {mib} MiB overflows"))?,
                );
            }
            "-j" | "--jobs" => {
                let n: usize = next("a worker count")?
                    .parse()
                    .map_err(|e| format!("bad {a} value: {e}"))?;
                if n == 0 {
                    return Err(format!("bad {a} value: 0 (need at least one worker)"));
                }
                cli.jobs = n;
            }
            "--shards" => {
                let n: usize = next("a shard count")?
                    .parse()
                    .map_err(|e| format!("bad --shards value: {e}"))?;
                if n == 0 {
                    return Err("bad --shards value: 0 (need at least one shard)".to_owned());
                }
                cli.shards = Some(n);
            }
            "--run" => {
                let spec = next("a comma-separated input list (or '-' for empty)")?;
                let vals = if spec == "-" {
                    Vec::new()
                } else {
                    spec.split(',')
                        .map(|v| v.trim().parse::<i64>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("bad --run value: {e}"))?
                };
                cli.run = Some(vals);
            }
            "--profile-out" => cli.profile_out = Some(PathBuf::from(next("a path")?)),
            "--emit-asm" => cli.emit_asm = true,
            "--report" => cli.report = true,
            "--report-json" => cli.report_json = Some(PathBuf::from(next("a path")?)),
            "--trace" => cli.trace = Some(PathBuf::from(next("a path")?)),
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(next("a directory")?)),
            "--no-cache" => cli.no_cache = true,
            "--no-mmap" => cli.no_mmap = true,
            "--gc-cache" => cli.gc_cache = true,
            "--gc-threshold-bytes" => {
                cli.gc_threshold_bytes = Some(
                    next("a size in bytes")?
                        .parse()
                        .map_err(|e| format!("bad --gc-threshold-bytes value: {e}"))?,
                );
            }
            "--remote-cache" => {
                cli.remote_cache = Some(next("a daemon address (host:port)")?);
            }
            "--remote-timeout-ms" => {
                cli.remote_timeout_ms = Some(
                    next("a timeout in milliseconds")?
                        .parse()
                        .map_err(|e| format!("bad --remote-timeout-ms value: {e}"))?,
                );
            }
            "--remote-retries" => {
                cli.remote_retries = Some(
                    next("a retry count")?
                        .parse()
                        .map_err(|e| format!("bad --remote-retries value: {e}"))?,
                );
            }
            "--profile-slice-granularity" => {
                cli.slice_granularity = Some(SliceGranularity::parse(&next("a granularity")?)?);
            }
            "--keep-going" => cli.keep_going = true,
            "--isolate" => cli.isolate = true,
            "-h" | "--help" => return Err(usage()),
            jn if jn.strip_prefix("-j").is_some_and(|n| !n.is_empty()) => {
                let n: usize = jn[2..].parse().map_err(|e| format!("bad -j value: {e}"))?;
                if n == 0 {
                    return Err("bad -j value: 0 (need at least one worker)".to_owned());
                }
                cli.jobs = n;
            }
            other if other.starts_with('-') || other.starts_with('+') => {
                return Err(format!("unknown option `{other}`\n{}", usage()));
            }
            file => cli.inputs.push(PathBuf::from(file)),
        }
    }
    if cli.inputs.is_empty() && !cli.gc_cache {
        return Err(format!("no input files\n{}", usage()));
    }
    validate(&cli)?;
    Ok(cli)
}

fn module_name(path: &Path) -> String {
    path.file_stem()
        .map_or_else(|| "module".to_owned(), |s| s.to_string_lossy().into_owned())
}

/// Test hook for worker-panic containment: `CMOCC_PANIC_ON=<module>`
/// panics the worker compiling that module, exercising the
/// `--keep-going` and exit-101 paths from the outside.
fn maybe_injected_panic(module: &str) {
    if std::env::var("CMOCC_PANIC_ON").as_deref() == Ok(module) {
        panic!("injected front-end panic in `{module}`");
    }
}

/// How one module failed to load: a front-end diagnostic, or a panic
/// contained by the worker pool.
enum LoadFailure {
    Diag(String),
    Panic(String),
}

/// Folds the per-input load results. Without `--keep-going` the first
/// diagnostic aborts (and a panic re-raises as an internal bug); with
/// it, each failure becomes a stderr diagnostic plus `degraded` /
/// `job-panic` trace events, and the survivors go on.
fn absorb_failures<T>(
    cli: &Cli,
    tel: &Telemetry,
    faults: &mut FaultStats,
    results: Vec<(usize, Result<T, LoadFailure>)>,
    mut keep: impl FnMut(usize, T),
) -> Result<(), Failure> {
    for (i, result) in results {
        match result {
            Ok(value) => keep(i, value),
            Err(failure) => {
                let module = module_name(&cli.inputs[i]);
                let msg = match &failure {
                    LoadFailure::Diag(msg) => msg.clone(),
                    LoadFailure::Panic(payload) => {
                        format!("module `{module}` panicked the compiler: {payload}")
                    }
                };
                if !cli.keep_going {
                    if let LoadFailure::Panic(payload) = &failure {
                        // An uncontained compiler panic is an internal
                        // bug: re-raise so the process exits 101.
                        panic!("front-end worker panicked on `{module}`: {payload}");
                    }
                    return Err(Failure { code: 1, msg });
                }
                eprintln!("cmocc: {msg} (--keep-going: skipping `{module}`)");
                if let LoadFailure::Panic(payload) = &failure {
                    faults.job_panics += 1;
                    tel.emit(TraceEvent::JobPanic {
                        job: i as u64,
                        payload: payload.clone(),
                    });
                }
                tel.emit(TraceEvent::Degraded {
                    component: "frontend",
                    name: module,
                    error: msg,
                });
                faults.degraded.push(module_name(&cli.inputs[i]));
            }
        }
    }
    Ok(())
}

/// Reads, and if necessary compiles, one input file. Returns the IL
/// object plus the `.cmo` path written in `-c` mode (reported by the
/// caller in input order, so the output is stable at any `-j`).
fn load_one(path: &Path, compile_only: bool) -> Result<(IlObject, Option<PathBuf>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if IlObject::is_il_object(&bytes) {
        let obj = IlObject::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        return Ok((obj, None));
    }
    let source = String::from_utf8(bytes).map_err(|_| {
        format!(
            "{} is neither an IL object nor UTF-8 source",
            path.display()
        )
    })?;
    let module = module_name(path);
    maybe_injected_panic(&module);
    let obj =
        cmo::compile_module(&module, &source).map_err(|e| format!("{}:{e}", path.display()))?;
    let mut written = None;
    if compile_only {
        let out = path.with_extension("cmo");
        std::fs::write(&out, obj.to_bytes())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        written = Some(out);
    }
    Ok((obj, written))
}

/// Loads every input, fanning front-end compilation out over the `-j`
/// worker pool. Results merge in input order: with several bad inputs
/// the diagnostic is always the first by position, and `-c` progress
/// lines print in input order, independent of scheduling.
fn load_objects(
    cli: &Cli,
    tel: &Telemetry,
    faults: &mut FaultStats,
) -> Result<Vec<IlObject>, Failure> {
    let results = cmo::try_run_jobs(cli.inputs.len(), cli.jobs, |_, i| {
        load_one(&cli.inputs[i], cli.compile_only)
    });
    let results = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let flat = match r {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(msg)) => Err(LoadFailure::Diag(msg)),
                Err(e) => Err(LoadFailure::Panic(e.payload)),
            };
            (i, flat)
        })
        .collect();
    let mut objects = Vec::with_capacity(cli.inputs.len());
    absorb_failures(cli, tel, faults, results, |_, (obj, written)| {
        if let Some(out) = written {
            println!("wrote {}", out.display());
        }
        objects.push(obj);
    })?;
    Ok(objects)
}

/// One classified input file: either a pre-compiled IL object or MLC
/// source still to be compiled (or fetched from the cache).
enum LoadedInput {
    Object(IlObject),
    Source { module: String, source: String },
}

fn read_one(path: &Path) -> Result<LoadedInput, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if IlObject::is_il_object(&bytes) {
        let obj = IlObject::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        return Ok(LoadedInput::Object(obj));
    }
    let source = String::from_utf8(bytes).map_err(|_| {
        format!(
            "{} is neither an IL object nor UTF-8 source",
            path.display()
        )
    })?;
    Ok(LoadedInput::Source {
        module: module_name(path),
        source,
    })
}

/// The slice plan for one cached profiled build: the computed
/// [`SlicePlan`] plus the mapping from input position to plan
/// position (degraded inputs own no slice).
struct InputSlices {
    plan: SlicePlan,
    slot_of: Vec<Option<usize>>,
}

impl InputSlices {
    /// The composed `(source fingerprint, slice fingerprint)` cache
    /// key for the input at position `i`.
    fn key_for(&self, i: usize, fp: &str) -> String {
        let slot = self.slot_of[i].expect("planned inputs own a slice");
        self.plan.composed_fp(slot, fp)
    }
}

/// Emits one `profile_slice` trace event per planned slice (in input
/// order, on the main thread) and folds the slice counters into the
/// cache stats — the CLI mirror of the driver's slice bookkeeping.
fn emit_slices(plan: &SlicePlan, bcache: &mut BuildCache, tel: &Telemetry) {
    for slice in &plan.slices {
        bcache.record_profile_slice(slice.stale);
        tel.emit(TraceEvent::ProfileSlice {
            module: slice.module.clone(),
            routines: slice.routines,
            stale: slice.stale,
            fp: slice.fp.clone(),
        });
    }
}

/// Plans profile slices from scope sidecars *before* any module-tier
/// probe. Pre-compiled object inputs derive their scope directly;
/// source inputs read the sidecar stored under their source
/// fingerprint alone. Returns `None` without a profile database, or
/// when any surviving source is missing its sidecar — the
/// all-or-nothing rule: the caller then compiles everything, replans
/// from the fresh objects, and seeds the sidecars, so composed keys
/// planned either way always agree.
fn plan_from_sidecars(
    inputs: &[Option<LoadedInput>],
    fps: &[String],
    options: &BuildOptions,
    bcache: &mut BuildCache,
    tel: &Telemetry,
) -> Option<InputSlices> {
    let db = options.profile.as_ref()?;
    let mut scopes = Vec::new();
    let mut slot_of = vec![None; inputs.len()];
    for (i, input) in inputs.iter().enumerate() {
        let scope = match input {
            Some(LoadedInput::Object(obj)) => ModuleScope::of_object(obj),
            Some(LoadedInput::Source { .. }) => bcache.get_scope(&fps[i])?,
            None => continue, // degraded at the read stage
        };
        slot_of[i] = Some(scopes.len());
        scopes.push(scope);
    }
    let plan = SlicePlan::compute(&scopes, db, options.slice_granularity, &options.inline);
    emit_slices(&plan, bcache, tel);
    Some(InputSlices { plan, slot_of })
}

/// [`load_objects`] with the incremental cache in the loop: inputs are
/// read and classified over the worker pool, then probed against the
/// cache *on the main thread in input order* (so cache trace events
/// are deterministic at any `-j`); only the misses are compiled, again
/// over the worker pool. Returns the objects plus their per-module
/// fingerprints for the whole-build key (failed modules under
/// `--keep-going` contribute neither).
///
/// With `+P` the module tier keys on composed
/// `(source, profile-slice)` fingerprints via [`plan_from_sidecars`];
/// a hit under a composed key is a retained hit. A bootstrap run (any
/// sidecar missing) probes nothing and seeds scopes and composed
/// entries for the next build.
fn load_objects_cached(
    cli: &Cli,
    options: &BuildOptions,
    bcache: &mut BuildCache,
    tel: &Telemetry,
    faults: &mut FaultStats,
) -> Result<(Vec<IlObject>, Vec<String>), Failure> {
    let reads = cmo::try_run_jobs(cli.inputs.len(), cli.jobs, |_, i| read_one(&cli.inputs[i]));
    let mut inputs: Vec<Option<LoadedInput>> = Vec::with_capacity(reads.len());
    let results = reads
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let flat = match r {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(msg)) => Err(LoadFailure::Diag(msg)),
                Err(e) => Err(LoadFailure::Panic(e.payload)),
            };
            (i, flat)
        })
        .collect();
    absorb_failures(cli, tel, faults, results, |i, input| {
        inputs.resize_with(i, || None);
        inputs.push(Some(input));
    })?;
    inputs.resize_with(cli.inputs.len(), || None);
    let mut fps = vec![String::new(); inputs.len()];
    for (i, input) in inputs.iter().enumerate() {
        match input {
            Some(LoadedInput::Object(obj)) => {
                fps[i] = cmo::object_fingerprint(&obj.module_name, &obj.to_bytes());
            }
            Some(LoadedInput::Source { module, source }) => {
                fps[i] = cmo::module_fingerprint(module, source);
            }
            None => {} // already degraded at the read stage
        }
    }
    let plan = plan_from_sidecars(&inputs, &fps, options, bcache, tel);
    let bootstrap = options.profile.is_some() && plan.is_none();
    let mut slots: Vec<Option<IlObject>> = (0..inputs.len()).map(|_| None).collect();
    let mut misses: Vec<usize> = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        match input {
            Some(LoadedInput::Object(obj)) => slots[i] = Some(obj.clone()),
            Some(LoadedInput::Source { module, .. }) => {
                // A profiled bootstrap probes nothing: composed keys
                // are unknown until every module's scope exists.
                let probed = match &plan {
                    Some(slices) => bcache.get_module(module, &slices.key_for(i, &fps[i]), tel),
                    None if bootstrap => None,
                    None => bcache.get_module(module, &fps[i], tel),
                };
                match probed {
                    Some(obj) => {
                        if plan.is_some() {
                            bcache.record_retained_hit();
                        }
                        slots[i] = Some(obj);
                    }
                    None => misses.push(i),
                }
            }
            None => {} // already degraded at the read stage
        }
    }
    let compiled = cmo::try_run_jobs(misses.len(), cli.jobs, |_, k| {
        let Some(LoadedInput::Source { module, source }) = &inputs[misses[k]] else {
            unreachable!("only source inputs can miss the cache");
        };
        maybe_injected_panic(module);
        cmo::compile_module(module, source)
            .map_err(|e| format!("{}:{e}", cli.inputs[misses[k]].display()))
    });
    let results = compiled
        .into_iter()
        .enumerate()
        .map(|(k, r)| {
            let flat = match r {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(msg)) => Err(LoadFailure::Diag(msg)),
                Err(e) => Err(LoadFailure::Panic(e.payload)),
            };
            (misses[k], flat)
        })
        .collect();
    absorb_failures(cli, tel, faults, results, |i, obj| {
        let Some(LoadedInput::Source { module, .. }) = &inputs[i] else {
            unreachable!("only source inputs can miss the cache");
        };
        match &plan {
            Some(slices) => bcache.put_module(module, &slices.key_for(i, &fps[i]), &obj, tel),
            None if bootstrap => {} // stored below, once the plan exists
            None => bcache.put_module(module, &fps[i], &obj, tel),
        }
        slots[i] = Some(obj);
    })?;
    if bootstrap {
        // Every scope now exists (degraded modules excepted): replan
        // from the objects in hand and seed the sidecars plus the
        // composed entries for the sources that compiled.
        let db = options
            .profile
            .as_ref()
            .expect("bootstrap implies a profile");
        let mut scopes = Vec::new();
        let mut slot_of = vec![None; inputs.len()];
        for (i, slot) in slots.iter().enumerate() {
            if let Some(obj) = slot {
                slot_of[i] = Some(scopes.len());
                scopes.push(ModuleScope::of_object(obj));
            }
        }
        let plan = SlicePlan::compute(&scopes, db, options.slice_granularity, &options.inline);
        emit_slices(&plan, bcache, tel);
        let seeded = InputSlices { plan, slot_of };
        for (i, slot) in slots.iter().enumerate() {
            let (Some(LoadedInput::Source { module, .. }), Some(obj)) = (&inputs[i], slot) else {
                continue; // objects need no entry, degraded modules have none
            };
            let slot = seeded.slot_of[i].expect("surviving modules own a slice");
            bcache.put_scope(&fps[i], &scopes[slot]);
            bcache.put_module(module, &seeded.key_for(i, &fps[i]), obj, tel);
        }
    }
    let mut objects = Vec::with_capacity(slots.len());
    let mut kept_fps = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let Some(obj) = slot else {
            continue; // degraded module: no object, no fingerprint
        };
        if cli.compile_only && matches!(inputs[i], Some(LoadedInput::Source { .. })) {
            let out = cli.inputs[i].with_extension("cmo");
            std::fs::write(&out, obj.to_bytes())
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            println!("wrote {}", out.display());
        }
        kept_fps.push(fps[i].clone());
        objects.push(obj);
    }
    Ok((objects, kept_fps))
}

/// The exit code of a run that otherwise succeeded: 3 when the cache
/// store was found corrupted (and recovered, forcing a rebuild), 0
/// otherwise.
fn success_code(bcache: Option<&BuildCache>) -> u8 {
    match bcache {
        Some(cache) if cache.recovered() > 0 || cache.stats().invalidations > 0 => 3,
        _ => 0,
    }
}

/// The `--keep-going` failure epilogue: the image is not linked, but
/// the trace, a partial report (selection and fault sections only),
/// and the cache of successfully compiled survivors are all written.
fn write_degraded_outputs(
    cli: &Cli,
    tel: &Telemetry,
    bcache: Option<&mut BuildCache>,
    faults: &FaultStats,
) -> Result<(), Failure> {
    let mut cache_stats = cmo::CacheStats::default();
    let mut faults = faults.clone();
    if let Some(cache) = bcache {
        cache_stats = cache.stats();
        faults.remote = cache.remote_stats();
        if let Err(e) = cache.persist() {
            tel.emit(TraceEvent::Degraded {
                component: "cache",
                name: "persist".to_owned(),
                error: e.to_string(),
            });
        }
    }
    if let Some(path) = &cli.report_json {
        let report = CompileReport {
            total_modules: cli.inputs.len(),
            cache: cache_stats,
            faults,
            ..CompileReport::default()
        };
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote report to {}", path.display());
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, tel.render_trace())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote trace to {}", path.display());
    }
    Ok(())
}

fn run_cli(cli: &Cli) -> Result<u8, Failure> {
    let tel = if cli.report_json.is_some() || cli.trace.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut bcache = match &cli.cache_dir {
        Some(dir) => {
            let storage = DiskStorage::new(dir)
                .map_err(|e| format!("cannot open cache at {}: {e}", dir.display()))?
                .with_mmap(!cli.no_mmap);
            let storage: Arc<dyn Storage> = match &cli.remote_cache {
                Some(addr) => {
                    let transport =
                        TcpTransport::new(addr.clone(), cli.remote_timeout_ms.unwrap_or(1000));
                    let policy = RetryPolicy {
                        retries: cli
                            .remote_retries
                            .unwrap_or_else(|| RetryPolicy::default().retries),
                        ..RetryPolicy::default()
                    };
                    let remote =
                        RemoteStorage::new(Arc::new(transport), policy).with_telemetry(tel.clone());
                    Arc::new(TieredStorage::new(Arc::new(storage), Arc::new(remote)))
                }
                None => Arc::new(storage),
            };
            Some(
                BuildCache::open_on(storage, &tel)
                    .map_err(|e| format!("cannot open cache at {}: {e}", dir.display()))?,
            )
        }
        None => None,
    };
    if cli.gc_cache {
        let cache = bcache
            .as_mut()
            .expect("--gc-cache was validated to require --cache-dir");
        let start = std::time::Instant::now();
        let gc = cache
            .gc(&tel)
            .map_err(|e| format!("cache gc failed: {e}"))?;
        // Wall time goes to stderr only: the trace and reports carry
        // no timings, so cached replays stay byte-identical.
        eprintln!(
            "cmocc: gc reclaimed {} bytes, kept {} live records, pruned {} manifest lines ({} ms)",
            gc.reclaimed_bytes,
            gc.live_records,
            gc.pruned_lines,
            start.elapsed().as_millis()
        );
        if cli.inputs.is_empty() {
            if let Some(path) = &cli.trace {
                std::fs::write(path, tel.render_trace())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("wrote trace to {}", path.display());
            }
            return Ok(success_code(bcache.as_ref()));
        }
    }
    let mut options = BuildOptions::new(cli.level).with_jobs(cli.jobs);
    options.telemetry = tel.clone();
    if let Some(bytes) = cli.gc_threshold_bytes {
        options = options.with_gc_threshold_bytes(bytes);
    }
    options.instrument = cli.instrument;
    if let Some(path) = &cli.profile {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let db = ProfileDb::from_bytes(&bytes)
            .map_err(|e| format!("{}: corrupt profile database: {e}", path.display()))?;
        options = options.with_profile_db(db);
    }
    if let Some(granularity) = cli.slice_granularity {
        options = options.with_slice_granularity(granularity);
    }
    if let Some(sel) = cli.selectivity {
        options = options.with_selectivity(sel);
    }
    if let Some(bytes) = cli.budget_bytes {
        options = options.with_naim(NaimConfig::with_budget(bytes));
    }
    if let Some(shards) = cli.shards {
        options.naim = options.naim.clone().shards(shards);
    }
    let mut faults = FaultStats::default();
    let (objects, fingerprints) = {
        let _parse = tel.phase("parse");
        match bcache.as_mut() {
            Some(cache) => load_objects_cached(cli, &options, cache, &tel, &mut faults)?,
            None => (load_objects(cli, &tel, &mut faults)?, Vec::new()),
        }
    };
    if !faults.degraded.is_empty() {
        write_degraded_outputs(cli, &tel, bcache.as_mut(), &faults)?;
        return Err(Failure {
            code: 1,
            msg: format!(
                "{} of {} modules failed; image not linked",
                faults.degraded.len(),
                cli.inputs.len()
            ),
        });
    }
    if cli.compile_only {
        if let Some(cache) = bcache.as_mut() {
            cache
                .persist()
                .map_err(|e| format!("cannot persist cache: {e}"))?;
        }
        return Ok(success_code(bcache.as_ref()));
    }
    let isolate_objects = cli.isolate.then(|| objects.clone());
    let out = build_objects_cached(objects, &fingerprints, &options, bcache.as_mut()).map_err(
        |e| match e {
            BuildError::Naim(inner) => format!(
                "optimizer out of memory: {inner}\n(hint: raise --budget or lower --sel, §5)"
            ),
            other => other.to_string(),
        },
    )?;
    println!(
        "linked {} instructions across {} routines",
        out.image.code_size(),
        out.image.routines.len()
    );
    if cli.report {
        let r = &out.report;
        println!("report:");
        println!(
            "  modules: {}/{} compiled with CMO",
            r.cmo_modules, r.total_modules
        );
        println!("  source lines: {}/{} under CMO", r.cmo_loc, r.total_loc);
        println!(
            "  HLO: {} inlines, {} clones, {} globals folded, {} dead stores, {} dead routines",
            r.hlo.inlines,
            r.hlo.clones,
            r.hlo.globals_folded,
            r.hlo.dead_stores_removed,
            r.hlo.dead_routines
        );
        println!(
            "  memory: peak {} bytes ({} compactions, {} offloads)",
            r.peak_memory.peak_total, r.loader.compactions, r.loader.offload_writes
        );
        println!("  compile work: {} units", r.compile_work);
        if r.cache.enabled {
            println!(
                "  cache: {} module hits, {} misses, {} invalidations, build replay: {}",
                r.cache.module_hits,
                r.cache.module_misses,
                r.cache.invalidations,
                if r.cache.build_hits > 0 { "yes" } else { "no" }
            );
            if r.cache.profile_slices > 0 {
                println!(
                    "  profile slices: {} planned, {} stale, {} retained hits",
                    r.cache.profile_slices,
                    r.cache.profile_stale_slices,
                    r.cache.profile_retained_hits
                );
            }
        }
        if r.faults.remote.enabled {
            let rem = &r.faults.remote;
            println!(
                "  remote: {} hits, {} misses, {} puts, {} retries, {} failures{}",
                rem.hits,
                rem.misses,
                rem.puts,
                rem.retries,
                rem.failures,
                if rem.breaker_open {
                    " (breaker open, demoted to local)"
                } else {
                    ""
                }
            );
        }
        for phase in &r.phases {
            println!(
                "  phase {:indent$}{}: {} work units",
                "",
                phase.name,
                phase.work(),
                indent = 2 * phase.depth as usize
            );
        }
    }
    if let Some(path) = &cli.report_json {
        std::fs::write(path, out.compile_report().to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote report to {}", path.display());
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, tel.render_trace())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote trace to {}", path.display());
    }
    if cli.emit_asm {
        print!("{}", cmo_vm::disassemble(&out.image));
    }
    if let Some(input) = &cli.run {
        let result = out.run(input).map_err(|e| e.to_string())?;
        println!(
            "ran main: returned {}, {} cycles, {} instructions, checksum {:#018x}",
            result.returned, result.cycles, result.instrs, result.checksum
        );
        if let Some(path) = &cli.profile_out {
            if !out.image.is_instrumented() {
                return Err("--profile-out needs an instrumented (+I) build"
                    .to_owned()
                    .into());
            }
            let db = cmo_vm::profile_from_run(&out.image, &result.probe_counts);
            std::fs::write(path, db.to_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote profile database to {}", path.display());
        }
        if let Some(objects) = isolate_objects {
            let mut cc = cmo::Compiler::new();
            for obj in objects {
                cc.add_object(obj);
            }
            let isolation =
                cmo::isolate_inline_ops(&cc, &options, input).map_err(|e| e.to_string())?;
            match isolation.report.first_faulty_op {
                Some(op) => println!(
                    "isolated: inline op {op} of {} first changes behaviour ({} builds)",
                    isolation.total_ops, isolation.report.builds
                ),
                None => println!(
                    "isolated: all {} inline ops behave ({} builds)",
                    isolation.total_ops, isolation.report.builds
                ),
            }
        }
    }
    Ok(success_code(bcache.as_ref()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run_cli(&cli) {
        Ok(code) => ExitCode::from(code),
        Err(Failure { code, msg }) => {
            eprintln!("cmocc: {msg}");
            ExitCode::from(code)
        }
    }
}
