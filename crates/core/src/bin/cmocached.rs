//! `cmocached` — the shared-cache daemon behind `cmocc --remote-cache`.
//!
//! ```text
//! usage: cmocached --store <dir> [--listen <addr>] [--stats]
//!
//!   --store <dir>    directory holding the daemon's blob store
//!   --listen <addr>  TCP address to bind (default 127.0.0.1:0; the
//!                    bound address is printed to stdout as
//!                    `listening on <addr>`)
//!   --stats          print one service-counter line to stderr when
//!                    the daemon exits on SIGINT/SIGTERM: blobs and
//!                    bytes currently stored, gets/hits/puts since
//!                    start (clients can ask the same counters live
//!                    with a `stats` frame)
//! ```
//!
//! The daemon answers the `CMOR` frame protocol over plain TCP: one
//! GET/PUT/DEL/STATS request frame per exchange, each reply carrying a
//! CRC and (for non-empty bodies) the content hash the client
//! re-verifies. Blobs are stored content-addressed in the `--store`
//! directory with a persistent name index, so a restarted daemon keeps
//! its warmth and concurrent PUTs of identical content deduplicate; a
//! rebinding PUT or a DEL reclaims the blob it orphans. Malformed
//! frames are answered with an `Err` frame or a dropped connection —
//! the client's retry logic owns the recovery; the daemon never panics
//! on wire input.

use cmo_naim::{read_frame_bytes, CacheService, DiskStorage, ServiceStats};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

fn usage() -> String {
    "usage: cmocached --store <dir> [--listen <addr>] [--stats]".to_owned()
}

/// The service the signal handler reports on: one leaked reference,
/// stored before the handlers are installed, never freed (the daemon
/// runs for the process lifetime).
static SERVICE: AtomicPtr<CacheService> = AtomicPtr::new(std::ptr::null_mut());

// Raw libc entry points: a signal handler may only use async-signal-
// safe operations, which rules out stdio, locks, and allocation. The
// handler below reads atomic counters, formats into a stack buffer,
// writes once to stderr, and exits.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn _exit(code: i32) -> !;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn push_bytes(buf: &mut [u8], n: &mut usize, s: &[u8]) {
    for &b in s {
        if *n < buf.len() {
            buf[*n] = b;
            *n += 1;
        }
    }
}

fn push_u64(buf: &mut [u8], n: &mut usize, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut d = 0;
    loop {
        digits[d] = b'0' + (v % 10) as u8;
        v /= 10;
        d += 1;
        if v == 0 {
            break;
        }
    }
    while d > 0 {
        d -= 1;
        push_bytes(buf, n, &[digits[d]]);
    }
}

/// Formats and writes the `--stats` line with async-signal-safe
/// operations only: stack buffer, hand-rolled integer formatting, one
/// `write(2)` to stderr.
fn write_stats_line(stats: &ServiceStats) {
    let mut buf = [0u8; 160];
    let mut n = 0;
    push_bytes(&mut buf, &mut n, b"cmocached: ");
    push_u64(&mut buf, &mut n, stats.blobs);
    push_bytes(&mut buf, &mut n, b" blobs, ");
    push_u64(&mut buf, &mut n, stats.bytes);
    push_bytes(&mut buf, &mut n, b" bytes, ");
    push_u64(&mut buf, &mut n, stats.gets);
    push_bytes(&mut buf, &mut n, b" gets, ");
    push_u64(&mut buf, &mut n, stats.hits);
    push_bytes(&mut buf, &mut n, b" hits, ");
    push_u64(&mut buf, &mut n, stats.puts);
    push_bytes(&mut buf, &mut n, b" puts\n");
    unsafe {
        let _ = write(2, buf.as_ptr(), n);
    }
}

extern "C" fn on_exit_signal(_sig: i32) {
    let service = SERVICE.load(Ordering::SeqCst);
    if !service.is_null() {
        // SAFETY: the pointer was leaked from an Arc at startup and is
        // never freed; `CacheService::stats` reads only atomics.
        let stats = unsafe { &*service }.stats();
        write_stats_line(&stats);
    }
    unsafe { _exit(0) }
}

/// Serves one client connection. A connection carries any number of
/// request frames; the connect-per-exchange client sends one and hangs
/// up, which lands here as a clean end-of-stream.
fn serve_connection(service: &CacheService, mut stream: TcpStream) {
    let idle = std::time::Duration::from_secs(30);
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(idle));
    loop {
        let request = match read_frame_bytes(&mut stream) {
            Ok(bytes) => bytes,
            // Disconnect, idle timeout, or an unframeable prefix: drop
            // the line; the client's retry/backoff owns the recovery.
            Err(_) => return,
        };
        let reply = service.handle(&request);
        if stream
            .write_all(&reply)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut store: Option<String> = None;
    let mut listen = "127.0.0.1:0".to_owned();
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => stats = true,
            "--store" => {
                store = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--store expects a directory".to_owned())?,
                );
            }
            "--listen" => {
                listen = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--listen expects an address".to_owned())?;
            }
            "-h" | "--help" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let store = store.ok_or_else(|| format!("--store is required\n{}", usage()))?;
    let storage =
        DiskStorage::new(&store).map_err(|e| format!("cannot open store at {store}: {e}"))?;
    let service = Arc::new(CacheService::new(Arc::new(storage)));
    if stats {
        // Leak one reference for the handler, then install it: the
        // store happens-before `signal`, so the handler never sees a
        // torn pointer.
        let leaked = Arc::into_raw(Arc::clone(&service)).cast_mut();
        SERVICE.store(leaked, Ordering::SeqCst);
        let handler = on_exit_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
    let listener =
        TcpListener::bind(listen.as_str()).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    // Machine-readable line start scripts parse (meaningful when the
    // requested port was 0).
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_connection(&service, stream));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cmocached: {msg}");
            ExitCode::from(2)
        }
    }
}
