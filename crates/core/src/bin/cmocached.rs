//! `cmocached` — the shared-cache daemon behind `cmocc --remote-cache`.
//!
//! ```text
//! usage: cmocached --store <dir> [--listen <addr>]
//!
//!   --store <dir>    directory holding the daemon's blob store
//!   --listen <addr>  TCP address to bind (default 127.0.0.1:0; the
//!                    bound address is printed to stdout as
//!                    `listening on <addr>`)
//! ```
//!
//! The daemon answers the `CMOR` frame protocol over plain TCP: one
//! GET/PUT/DEL request frame per exchange, each reply carrying a CRC
//! and (for non-empty bodies) the content hash the client re-verifies.
//! Blobs are stored content-addressed in the `--store` directory with a
//! persistent name index, so a restarted daemon keeps its warmth and
//! concurrent PUTs of identical content deduplicate. Malformed frames
//! are answered with an `Err` frame or a dropped connection — the
//! client's retry logic owns the recovery; the daemon never panics on
//! wire input.

use cmo_naim::{read_frame_bytes, CacheService, DiskStorage};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> String {
    "usage: cmocached --store <dir> [--listen <addr>]".to_owned()
}

/// Serves one client connection. A connection carries any number of
/// request frames; the connect-per-exchange client sends one and hangs
/// up, which lands here as a clean end-of-stream.
fn serve_connection(service: &CacheService, mut stream: TcpStream) {
    let idle = std::time::Duration::from_secs(30);
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(idle));
    loop {
        let request = match read_frame_bytes(&mut stream) {
            Ok(bytes) => bytes,
            // Disconnect, idle timeout, or an unframeable prefix: drop
            // the line; the client's retry/backoff owns the recovery.
            Err(_) => return,
        };
        let reply = service.handle(&request);
        if stream
            .write_all(&reply)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut store: Option<String> = None;
    let mut listen = "127.0.0.1:0".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                store = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--store expects a directory".to_owned())?,
                );
            }
            "--listen" => {
                listen = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--listen expects an address".to_owned())?;
            }
            "-h" | "--help" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let store = store.ok_or_else(|| format!("--store is required\n{}", usage()))?;
    let storage =
        DiskStorage::new(&store).map_err(|e| format!("cannot open store at {store}: {e}"))?;
    let service = Arc::new(CacheService::new(Arc::new(storage)));
    let listener =
        TcpListener::bind(listen.as_str()).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    // Machine-readable line start scripts parse (meaningful when the
    // requested port was 0).
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_connection(&service, stream));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cmocached: {msg}");
            ExitCode::from(2)
        }
    }
}
