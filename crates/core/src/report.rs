//! The unified compile report: one versioned, deterministic JSON
//! document aggregating every subsystem's counters.
//!
//! Before this module existed, each figure bench reached into a
//! different per-crate stats struct ([`LoaderStats`] for Figure 5,
//! [`MemorySnapshot`] for Figure 4, driver fields for Figure 6). A
//! [`CompileReport`] collects them all behind one schema
//! (`cmo.report.v1`) so external tooling — and the in-repo benches —
//! consume a single stable surface. See `METRICS.md` at the repository
//! root for the field-by-field documentation.
//!
//! The JSON is hand-rolled (no serde) and contains only integers,
//! strings, and the work-unit clock — never wall time — so two
//! identical compilations serialize byte-identically.

use crate::cache::CacheStats;
use crate::driver::BuildReport;
use cmo_hlo::{HloStats, PartitionStats};
use cmo_naim::{DecodeError, Decoder, Encoder, LoaderStats, MemClass, MemorySnapshot, RemoteStats};
use cmo_telemetry::json::JsonWriter;
use cmo_telemetry::{PhaseRecord, REPORT_SCHEMA};

/// Contained faults of one compilation: worker panics absorbed by the
/// job pool and modules abandoned under `--keep-going`.
///
/// Storage-recovery counts are deliberately *not* part of the report:
/// a rebuild after cache recovery must serialize byte-identically to
/// the original build, so recovery is surfaced through `recover` trace
/// events and `cmocc`'s exit code 3 instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker panics contained by the job pool.
    pub job_panics: u64,
    /// Names of modules that failed and were skipped (`--keep-going`),
    /// in input order.
    pub degraded: Vec<String>,
    /// Remote shared-cache tier traffic and failures (all zeros with
    /// no `--remote-cache`). A tripped breaker shows up here — the
    /// build itself still succeeds on local state alone.
    pub remote: RemoteStats,
}

/// Aggregated, versioned view of one compilation, serializable to the
/// `cmo.report.v1` JSON schema via [`CompileReport::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileReport {
    /// Modules selected for CMO.
    pub cmo_modules: usize,
    /// Total modules in the program.
    pub total_modules: usize,
    /// Source lines inside CMO modules (Figure 6 x-axis).
    pub cmo_loc: u64,
    /// Total source lines.
    pub total_loc: u64,
    /// HLO transformation counters.
    pub hlo: HloStats,
    /// Cluster partition counters from the parallel HLO fan-out.
    pub clusters: PartitionStats,
    /// NAIM loader activity counters.
    pub loader: LoaderStats,
    /// Optimizer memory snapshot (Figures 4/5).
    pub memory: MemorySnapshot,
    /// Largest per-routine LLO working set in bytes.
    pub llo_peak_bytes: usize,
    /// Total simulated compile effort in work units (Figure 6 y-axis).
    pub compile_work: u64,
    /// Final image size in machine instructions.
    pub image_instrs: usize,
    /// Incremental-cache activity for this build (all zeros with the
    /// cache disabled).
    pub cache: CacheStats,
    /// Faults contained during the build (empty on a clean run).
    pub faults: FaultStats,
    /// Hierarchical phase timers on the work-unit clock.
    pub phases: Vec<PhaseRecord>,
}

/// JSON field name for a memory class, in [`MemClass::ALL`] order.
fn mem_class_name(class: MemClass) -> &'static str {
    match class {
        MemClass::Global => "global",
        MemClass::TransitoryExpanded => "transitory_expanded",
        MemClass::TransitoryCompact => "transitory_compact",
        MemClass::Derived => "derived",
    }
}

impl CompileReport {
    /// The schema identifier written into every report
    /// (re-exported from `cmo-telemetry` for discoverability).
    pub const SCHEMA: &'static str = REPORT_SCHEMA;

    /// Builds the unified report from a driver [`BuildReport`].
    #[must_use]
    pub fn from_build(report: &BuildReport) -> Self {
        CompileReport {
            cmo_modules: report.cmo_modules,
            total_modules: report.total_modules,
            cmo_loc: report.cmo_loc,
            total_loc: report.total_loc,
            hlo: report.hlo,
            clusters: report.clusters,
            loader: report.loader,
            memory: report.peak_memory,
            llo_peak_bytes: report.llo_peak_bytes,
            compile_work: report.compile_work,
            image_instrs: report.image_instrs,
            cache: report.cache,
            faults: report.faults.clone(),
            phases: report.phases.clone(),
        }
    }

    /// Peak optimizer (HLO-stage) heap in bytes — the Figure 4/5
    /// memory axis.
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.memory.peak_total
    }

    /// Peak over the whole compilation: the larger of the optimizer
    /// heap and the biggest per-routine LLO working set.
    #[must_use]
    pub fn overall_peak_bytes(&self) -> usize {
        self.memory.peak_total.max(self.llo_peak_bytes)
    }

    /// Serializes to the versioned `cmo.report.v1` JSON document.
    ///
    /// Field order is fixed, all numbers are integers, and no wall
    /// time is included, so the output is byte-identical across runs
    /// of the same compilation. Every field is documented in
    /// `METRICS.md`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_str("schema", Self::SCHEMA);

        w.begin_obj(Some("selection"));
        w.field_usize("cmo_modules", self.cmo_modules);
        w.field_usize("total_modules", self.total_modules);
        w.field_u64("cmo_loc", self.cmo_loc);
        w.field_u64("total_loc", self.total_loc);
        w.end_obj();

        w.begin_obj(Some("hlo"));
        w.field_u64("inlines", self.hlo.inlines);
        w.field_u64("sites_considered", self.hlo.sites_considered);
        w.field_u64("globals_folded", self.hlo.globals_folded);
        w.field_u64("dead_stores_removed", self.hlo.dead_stores_removed);
        w.field_u64("dead_routines", self.hlo.dead_routines);
        w.field_u64("clones", self.hlo.clones);
        w.begin_obj(Some("clusters"));
        w.field_u64("count", self.clusters.clusters);
        w.field_u64("largest", self.clusters.largest);
        w.field_u64("cross_edges", self.clusters.cross_edges);
        w.end_obj();
        w.end_obj();

        w.begin_obj(Some("loader"));
        w.field_u64("pools", self.loader.pools);
        w.field_u64("hits", self.loader.hits);
        w.field_u64("cache_rescues", self.loader.cache_rescues);
        w.field_u64("uncompactions", self.loader.uncompactions);
        w.field_u64("compactions", self.loader.compactions);
        w.field_u64("offload_writes", self.loader.offload_writes);
        w.field_u64("offload_reads", self.loader.offload_reads);
        w.field_u64("bytes_swizzled", self.loader.bytes_swizzled);
        w.field_u64("bytes_offloaded", self.loader.bytes_offloaded);
        w.field_u64("work_units", self.loader.work_units);
        w.field_u64("fetch_work_units", self.loader.fetch_work_units);
        w.end_obj();

        w.begin_obj(Some("memory"));
        w.begin_obj(Some("current"));
        for class in MemClass::ALL {
            w.field_usize(mem_class_name(class), self.memory.class(class));
        }
        w.end_obj();
        w.begin_obj(Some("peak"));
        for class in MemClass::ALL {
            w.field_usize(mem_class_name(class), self.memory.peak_class(class));
        }
        w.end_obj();
        w.field_usize("peak_total", self.memory.peak_total);
        w.end_obj();

        w.begin_obj(Some("llo"));
        w.field_usize("peak_bytes", self.llo_peak_bytes);
        w.end_obj();

        w.begin_obj(Some("image"));
        w.field_usize("instrs", self.image_instrs);
        w.end_obj();

        w.begin_obj(Some("work"));
        w.field_u64("compile_work", self.compile_work);
        w.end_obj();

        w.begin_obj(Some("cache"));
        w.field_bool("enabled", self.cache.enabled);
        w.field_u64("module_hits", self.cache.module_hits);
        w.field_u64("module_misses", self.cache.module_misses);
        w.field_u64("build_hits", self.cache.build_hits);
        w.field_u64("invalidations", self.cache.invalidations);
        w.begin_obj(Some("profile"));
        w.field_u64("slices", self.cache.profile_slices);
        w.field_u64("stale_slices", self.cache.profile_stale_slices);
        w.field_u64("retained_hits", self.cache.profile_retained_hits);
        w.end_obj();
        w.begin_obj(Some("gc"));
        w.field_u64("runs", self.cache.gc_runs);
        w.field_u64("reclaimed_bytes", self.cache.gc_reclaimed_bytes);
        w.field_u64("live_records", self.cache.gc_live_records);
        w.field_u64("pruned_lines", self.cache.gc_pruned_lines);
        w.end_obj();
        w.end_obj();

        w.begin_obj(Some("faults"));
        w.field_u64("job_panics", self.faults.job_panics);
        w.begin_arr(Some("degraded"));
        for module in &self.faults.degraded {
            w.elem_str(module);
        }
        w.end_arr();
        w.begin_obj(Some("remote"));
        w.field_bool("enabled", self.faults.remote.enabled);
        w.field_u64("gets", self.faults.remote.gets);
        w.field_u64("hits", self.faults.remote.hits);
        w.field_u64("misses", self.faults.remote.misses);
        w.field_u64("puts", self.faults.remote.puts);
        w.field_u64("retries", self.faults.remote.retries);
        w.field_u64("failures", self.faults.remote.failures);
        w.field_bool("breaker_open", self.faults.remote.breaker_open);
        w.field_u64("fetched_bytes", self.faults.remote.fetched_bytes);
        w.field_u64("pushed_bytes", self.faults.remote.pushed_bytes);
        w.end_obj();
        w.end_obj();

        w.begin_arr(Some("phases"));
        for phase in &self.phases {
            w.begin_obj(None);
            w.field_str("name", &phase.name);
            w.field_u64("depth", u64::from(phase.depth));
            w.field_u64("start_work", phase.start_work);
            w.field_u64("end_work", phase.end_work);
            w.end_obj();
        }
        w.end_arr();

        w.end_obj();
        w.finish()
    }

    /// Serializes the report to the cache's relocatable byte form.
    ///
    /// `wall_nanos` is deliberately dropped, exactly as in the JSON
    /// form: a replayed report must be indistinguishable from the cold
    /// run's, and wall time never is.
    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.write_usize(self.cmo_modules);
        enc.write_usize(self.total_modules);
        enc.write_u64(self.cmo_loc);
        enc.write_u64(self.total_loc);
        enc.write_u64(self.hlo.inlines);
        enc.write_u64(self.hlo.sites_considered);
        enc.write_u64(self.hlo.globals_folded);
        enc.write_u64(self.hlo.dead_stores_removed);
        enc.write_u64(self.hlo.dead_routines);
        enc.write_u64(self.hlo.clones);
        enc.write_u64(self.clusters.clusters);
        enc.write_u64(self.clusters.largest);
        enc.write_u64(self.clusters.cross_edges);
        enc.write_u64(self.loader.pools);
        enc.write_u64(self.loader.hits);
        enc.write_u64(self.loader.cache_rescues);
        enc.write_u64(self.loader.uncompactions);
        enc.write_u64(self.loader.compactions);
        enc.write_u64(self.loader.offload_writes);
        enc.write_u64(self.loader.offload_reads);
        enc.write_u64(self.loader.bytes_swizzled);
        enc.write_u64(self.loader.bytes_offloaded);
        enc.write_u64(self.loader.work_units);
        enc.write_u64(self.loader.fetch_work_units);
        for v in self.memory.current {
            enc.write_usize(v);
        }
        for v in self.memory.peak {
            enc.write_usize(v);
        }
        enc.write_usize(self.memory.peak_total);
        enc.write_usize(self.llo_peak_bytes);
        enc.write_u64(self.compile_work);
        enc.write_usize(self.image_instrs);
        enc.write_bool(self.cache.enabled);
        enc.write_u64(self.cache.module_hits);
        enc.write_u64(self.cache.module_misses);
        enc.write_u64(self.cache.build_hits);
        enc.write_u64(self.cache.invalidations);
        enc.write_u64(self.cache.gc_runs);
        enc.write_u64(self.cache.gc_reclaimed_bytes);
        enc.write_u64(self.cache.gc_live_records);
        enc.write_u64(self.cache.gc_pruned_lines);
        enc.write_u64(self.cache.profile_slices);
        enc.write_u64(self.cache.profile_stale_slices);
        enc.write_u64(self.cache.profile_retained_hits);
        enc.write_u64(self.faults.job_panics);
        enc.write_usize(self.faults.degraded.len());
        for module in &self.faults.degraded {
            enc.write_str(module);
        }
        enc.write_bool(self.faults.remote.enabled);
        enc.write_u64(self.faults.remote.gets);
        enc.write_u64(self.faults.remote.hits);
        enc.write_u64(self.faults.remote.misses);
        enc.write_u64(self.faults.remote.puts);
        enc.write_u64(self.faults.remote.retries);
        enc.write_u64(self.faults.remote.failures);
        enc.write_bool(self.faults.remote.breaker_open);
        enc.write_u64(self.faults.remote.fetched_bytes);
        enc.write_u64(self.faults.remote.pushed_bytes);
        enc.write_usize(self.phases.len());
        for phase in &self.phases {
            enc.write_str(&phase.name);
            enc.write_u32(phase.depth);
            enc.write_u64(phase.start_work);
            enc.write_u64(phase.end_work);
        }
    }

    /// Rebuilds a report from its relocatable byte form. `wall_nanos`
    /// comes back zero on every phase record (it is never stored).
    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let cmo_modules = dec.read_usize()?;
        let total_modules = dec.read_usize()?;
        let cmo_loc = dec.read_u64()?;
        let total_loc = dec.read_u64()?;
        let hlo = HloStats {
            inlines: dec.read_u64()?,
            sites_considered: dec.read_u64()?,
            globals_folded: dec.read_u64()?,
            dead_stores_removed: dec.read_u64()?,
            dead_routines: dec.read_u64()?,
            clones: dec.read_u64()?,
        };
        let clusters = PartitionStats {
            clusters: dec.read_u64()?,
            largest: dec.read_u64()?,
            cross_edges: dec.read_u64()?,
        };
        let loader = LoaderStats {
            pools: dec.read_u64()?,
            hits: dec.read_u64()?,
            cache_rescues: dec.read_u64()?,
            uncompactions: dec.read_u64()?,
            compactions: dec.read_u64()?,
            offload_writes: dec.read_u64()?,
            offload_reads: dec.read_u64()?,
            bytes_swizzled: dec.read_u64()?,
            bytes_offloaded: dec.read_u64()?,
            work_units: dec.read_u64()?,
            fetch_work_units: dec.read_u64()?,
        };
        let mut current = [0usize; 4];
        for slot in &mut current {
            *slot = dec.read_usize()?;
        }
        let mut peak = [0usize; 4];
        for slot in &mut peak {
            *slot = dec.read_usize()?;
        }
        let memory = MemorySnapshot {
            current,
            peak,
            peak_total: dec.read_usize()?,
        };
        let llo_peak_bytes = dec.read_usize()?;
        let compile_work = dec.read_u64()?;
        let image_instrs = dec.read_usize()?;
        let cache = CacheStats {
            enabled: dec.read_bool()?,
            module_hits: dec.read_u64()?,
            module_misses: dec.read_u64()?,
            build_hits: dec.read_u64()?,
            invalidations: dec.read_u64()?,
            gc_runs: dec.read_u64()?,
            gc_reclaimed_bytes: dec.read_u64()?,
            gc_live_records: dec.read_u64()?,
            gc_pruned_lines: dec.read_u64()?,
            profile_slices: dec.read_u64()?,
            profile_stale_slices: dec.read_u64()?,
            profile_retained_hits: dec.read_u64()?,
        };
        let job_panics = dec.read_u64()?;
        let n_degraded = dec.read_usize()?;
        let mut degraded = Vec::with_capacity(n_degraded.min(4096));
        for _ in 0..n_degraded {
            degraded.push(dec.read_str()?.to_owned());
        }
        let remote = RemoteStats {
            enabled: dec.read_bool()?,
            gets: dec.read_u64()?,
            hits: dec.read_u64()?,
            misses: dec.read_u64()?,
            puts: dec.read_u64()?,
            retries: dec.read_u64()?,
            failures: dec.read_u64()?,
            breaker_open: dec.read_bool()?,
            fetched_bytes: dec.read_u64()?,
            pushed_bytes: dec.read_u64()?,
        };
        let faults = FaultStats {
            job_panics,
            degraded,
            remote,
        };
        let n_phases = dec.read_usize()?;
        let mut phases = Vec::with_capacity(n_phases.min(4096));
        for _ in 0..n_phases {
            phases.push(PhaseRecord {
                name: dec.read_str()?.to_owned(),
                depth: dec.read_u32()?,
                start_work: dec.read_u64()?,
                end_work: dec.read_u64()?,
                wall_nanos: 0,
            });
        }
        Ok(CompileReport {
            cmo_modules,
            total_modules,
            cmo_loc,
            total_loc,
            hlo,
            clusters,
            loader,
            memory,
            llo_peak_bytes,
            compile_work,
            image_instrs,
            cache,
            faults,
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileReport {
        CompileReport {
            cmo_modules: 2,
            total_modules: 3,
            cmo_loc: 40,
            total_loc: 60,
            hlo: HloStats {
                inlines: 5,
                sites_considered: 9,
                ..HloStats::default()
            },
            loader: LoaderStats {
                pools: 6,
                compactions: 4,
                work_units: 1234,
                ..LoaderStats::default()
            },
            llo_peak_bytes: 2048,
            compile_work: 9999,
            image_instrs: 321,
            phases: vec![PhaseRecord {
                name: "hlo.inline".to_owned(),
                depth: 1,
                start_work: 10,
                end_work: 200,
                wall_nanos: 77,
            }],
            ..CompileReport::default()
        }
    }

    #[test]
    fn json_is_versioned_and_deterministic() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"cmo.report.v1\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn json_has_all_sections_and_no_wall_time() {
        let text = sample().to_json();
        for section in [
            "\"selection\"",
            "\"hlo\"",
            "\"loader\"",
            "\"memory\"",
            "\"llo\"",
            "\"image\"",
            "\"work\"",
            "\"cache\"",
            "\"profile\"",
            "\"gc\"",
            "\"faults\"",
            "\"remote\"",
            "\"phases\"",
        ] {
            assert!(text.contains(section), "missing {section} in {text}");
        }
        assert!(text.contains("\"name\": \"hlo.inline\""));
        assert!(text.contains("\"work_units\": 1234"));
        assert!(
            !text.contains("wall") && !text.contains("nanos"),
            "wall time must never reach the JSON report"
        );
    }

    #[test]
    fn codec_round_trips_everything_but_wall_time() {
        let mut r = sample();
        r.cache = CacheStats {
            enabled: true,
            module_hits: 3,
            module_misses: 1,
            build_hits: 1,
            invalidations: 2,
            gc_runs: 1,
            gc_reclaimed_bytes: 4096,
            gc_live_records: 5,
            gc_pruned_lines: 2,
            profile_slices: 4,
            profile_stale_slices: 1,
            profile_retained_hits: 3,
        };
        r.faults = FaultStats {
            job_panics: 1,
            degraded: vec!["util".to_owned(), "app".to_owned()],
            remote: RemoteStats {
                enabled: true,
                gets: 4,
                hits: 2,
                misses: 1,
                puts: 3,
                retries: 2,
                failures: 1,
                breaker_open: true,
                fetched_bytes: 512,
                pushed_bytes: 1024,
            },
        };
        let mut enc = Encoder::new();
        r.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = CompileReport::decode(&mut Decoder::new(&bytes)).expect("decodes");
        // wall_nanos is dropped by design; everything else survives.
        let mut expect = r.clone();
        expect.phases[0].wall_nanos = 0;
        assert_eq!(back, expect);
        assert_eq!(back.to_json(), {
            let mut cold = r;
            cold.phases[0].wall_nanos = 0;
            cold.to_json()
        });
    }

    #[test]
    fn accessors_unify_peaks() {
        let mut r = sample();
        r.memory.peak_total = 1000;
        assert_eq!(r.peak_bytes(), 1000);
        assert_eq!(r.overall_peak_bytes(), 2048);
        r.llo_peak_bytes = 10;
        assert_eq!(r.overall_peak_bytes(), 1000);
    }
}
