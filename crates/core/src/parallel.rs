//! A fixed-size worker pool with deterministic result merging.
//!
//! The driver's parallel sections (front-end lowering, per-routine LLO)
//! all follow one shape: `n` independent jobs, each producing a result
//! keyed by its index, merged back in index order. [`run_jobs`] is that
//! shape: workers pull job indices from a shared queue (an atomic
//! cursor), write results into index-keyed slots, and the caller gets a
//! `Vec` in job order — so the *output* is independent of which worker
//! ran which job, and byte-identical across `-j` levels.
//!
//! With `workers <= 1` (or a single job) everything runs inline on the
//! calling thread through the same code path, which is what makes
//! `-j1` structurally identical to the parallel runs rather than a
//! separate sequential implementation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Runs `n_jobs` jobs over `workers` threads and returns their results
/// in job order.
///
/// `f` is called once per job index `i` in `0..n_jobs`, with the id of
/// the executing worker as its first argument (0 when running inline,
/// `1..=workers` on pool threads). Worker ids exist for telemetry
/// tagging only — results are keyed by job index, never by worker.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers
/// first).
pub fn run_jobs<R, F>(n_jobs: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u32, usize) -> R + Sync,
{
    if workers <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(|i| f(0, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for worker in 1..=workers.min(n_jobs) {
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let result = f(worker as u32, i);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every job index was claimed exactly once")
        })
        .collect()
}

/// Default worker count for `-j` without an argument: the machine's
/// available parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_jobs(100, workers, |_, i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_jobs(0, 4, |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn inline_mode_reports_worker_zero() {
        let out = run_jobs(3, 1, |w, _| w);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn pool_mode_uses_nonzero_worker_ids() {
        let out = run_jobs(64, 4, |w, _| w);
        assert!(out.iter().all(|&w| (1..=4).contains(&w)));
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let seq = run_jobs(200, 1, |_, i| i.wrapping_mul(2_654_435_761));
        for workers in [2, 3, 4, 8] {
            assert_eq!(
                seq,
                run_jobs(200, workers, |_, i| i.wrapping_mul(2_654_435_761))
            );
        }
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
