//! A fixed-size worker pool with deterministic result merging and
//! panic containment.
//!
//! The driver's parallel sections (front-end lowering, per-routine LLO)
//! all follow one shape: `n` independent jobs, each producing a result
//! keyed by its index, merged back in index order. [`try_run_jobs`] is
//! that shape: workers pull job indices from a shared queue (an atomic
//! cursor), write results into index-keyed slots, and the caller gets a
//! `Vec` in job order — so the *output* is independent of which worker
//! ran which job, and byte-identical across `-j` levels.
//!
//! A panicking job does not tear down the pool: each job runs under
//! [`std::panic::catch_unwind`], its panic is converted into a
//! [`JobError`] carrying the job index and payload, and the remaining
//! jobs still run. [`run_jobs`] is the infallible wrapper that
//! re-raises the first failure for callers whose jobs cannot fail.
//!
//! With `workers <= 1` (or a single job) everything runs inline on the
//! calling thread through the same code path, which is what makes
//! `-j1` structurally identical to the parallel runs rather than a
//! separate sequential implementation.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A job that panicked instead of producing its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the job that panicked.
    pub index: usize,
    /// The panic payload, when it was a string ("non-string panic
    /// payload" otherwise).
    pub payload: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for JobError {}

/// Renders a `catch_unwind` payload for diagnostics.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `n_jobs` jobs over `workers` threads and returns their results
/// in job order, with each panic contained as a [`JobError`].
///
/// `f` is called once per job index `i` in `0..n_jobs`, with the id of
/// the executing worker as its first argument (0 when running inline,
/// `1..=workers` on pool threads). Worker ids exist for telemetry
/// tagging only — results are keyed by job index, never by worker.
pub fn try_run_jobs<R, F>(n_jobs: usize, workers: usize, f: F) -> Vec<Result<R, JobError>>
where
    R: Send,
    F: Fn(u32, usize) -> R + Sync,
{
    let guarded = |worker: u32, i: usize| {
        catch_unwind(AssertUnwindSafe(|| f(worker, i))).map_err(|payload| JobError {
            index: i,
            payload: payload_string(payload.as_ref()),
        })
    };
    if workers <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(|i| guarded(0, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, JobError>>>> =
        (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for worker in 1..=workers.min(n_jobs) {
            let cursor = &cursor;
            let slots = &slots;
            let guarded = &guarded;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let result = guarded(worker as u32, i);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every job index was claimed exactly once")
        })
        .collect()
}

/// Infallible wrapper over [`try_run_jobs`] for jobs that cannot fail.
///
/// # Panics
///
/// Re-raises the lowest-indexed job panic (after all jobs have run and
/// all workers have joined).
pub fn run_jobs<R, F>(n_jobs: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u32, usize) -> R + Sync,
{
    try_run_jobs(n_jobs, workers, f)
        .into_iter()
        .map(|result| match result {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// Default worker count for `-j` without an argument: the machine's
/// available parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_jobs(100, workers, |_, i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_jobs(0, 4, |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn inline_mode_reports_worker_zero() {
        let out = run_jobs(3, 1, |w, _| w);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn pool_mode_uses_nonzero_worker_ids() {
        let out = run_jobs(64, 4, |w, _| w);
        assert!(out.iter().all(|&w| (1..=4).contains(&w)));
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let seq = run_jobs(200, 1, |_, i| i.wrapping_mul(2_654_435_761));
        for workers in [2, 3, 4, 8] {
            assert_eq!(
                seq,
                run_jobs(200, workers, |_, i| i.wrapping_mul(2_654_435_761))
            );
        }
    }

    #[test]
    fn panicking_job_yields_a_structured_error() {
        for workers in [1, 4] {
            let results = try_run_jobs(8, workers, |_, i| {
                if i == 3 {
                    panic!("job three exploded");
                }
                i * 10
            });
            for (i, result) in results.iter().enumerate() {
                if i == 3 {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.index, 3);
                    assert_eq!(err.payload, "job three exploded");
                    assert_eq!(format!("{err}"), "job 3 panicked: job three exploded");
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i * 10, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn formatted_panic_payloads_are_captured() {
        let results = try_run_jobs(2, 1, |_, i| {
            if i == 1 {
                panic!("formatted {} payload", 42);
            }
        });
        assert_eq!(
            results[1].as_ref().unwrap_err().payload,
            "formatted 42 payload"
        );
    }

    #[test]
    fn run_jobs_reraises_the_first_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(4, 2, |_, i| {
                if i >= 2 {
                    panic!("boom {i}");
                }
            })
        }))
        .unwrap_err();
        assert_eq!(payload_string(caught.as_ref()), "job 2 panicked: boom 2");
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
