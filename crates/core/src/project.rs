//! `make`-compatible incremental builds (§6.1).
//!
//! "Our system works with existing processes by maintaining all
//! persistent information (save for profile data) in object files, and
//! rebuilding program-wide information at optimization time." A
//! [`Project`] models that flow: each source module compiles to an IL
//! object *file image* (bytes); editing one module recompiles only
//! that module's object; every build re-reads the objects and rebuilds
//! program-wide information from scratch. The trade-off the paper
//! accepts — no persistent program database, hence no
//! recompilation-avoidance analysis [2] — is visible here as the full
//! relink on every build.

use crate::driver::{build_objects, BuildError, BuildOptions, BuildOutput};
use cmo_ir::IlObject;
use std::collections::BTreeMap;

fn source_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    object_bytes: Vec<u8>,
}

/// An incremental project: module sources with cached object files.
#[derive(Debug, Clone, Default)]
pub struct Project {
    modules: BTreeMap<String, Entry>,
    recompiles: u64,
}

impl Project {
    /// An empty project.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or updates a module source. Recompiles (frontend → IL
    /// object) only when the source actually changed, like `make` on a
    /// touched file. Returns `true` if a recompile happened.
    ///
    /// # Errors
    ///
    /// Returns frontend diagnostics for the changed module.
    pub fn update_source(&mut self, module: &str, source: &str) -> Result<bool, BuildError> {
        let hash = source_hash(source);
        if let Some(e) = self.modules.get(module) {
            if e.hash == hash {
                return Ok(false);
            }
        }
        let obj = cmo_frontend::compile_module(module, source)?;
        self.modules.insert(
            module.to_owned(),
            Entry {
                hash,
                object_bytes: obj.to_bytes(),
            },
        );
        self.recompiles += 1;
        Ok(true)
    }

    /// Number of frontend recompiles performed so far.
    #[must_use]
    pub fn recompiles(&self) -> u64 {
        self.recompiles
    }

    /// Number of modules in the project.
    #[must_use]
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Reads every cached object file back (exactly what the linker
    /// does when it encounters IL objects, §3).
    ///
    /// # Panics
    ///
    /// Panics if a cached object image is corrupt, which would indicate
    /// an internal bug — the images were produced by this process.
    #[must_use]
    pub fn objects(&self) -> Vec<IlObject> {
        self.modules
            .values()
            .map(|e| IlObject::from_bytes(&e.object_bytes).expect("self-produced object"))
            .collect()
    }

    /// Links and optimizes the whole project at the given options.
    ///
    /// # Errors
    ///
    /// See [`crate::Compiler::build`].
    pub fn build(&self, options: &BuildOptions) -> Result<BuildOutput, BuildError> {
        build_objects(self.objects(), options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BuildOptions;

    #[test]
    fn unchanged_sources_do_not_recompile() {
        let mut p = Project::new();
        assert!(p
            .update_source("a", "fn main() -> int { return 1; }")
            .unwrap());
        assert!(!p
            .update_source("a", "fn main() -> int { return 1; }")
            .unwrap());
        assert_eq!(p.recompiles(), 1);
    }

    #[test]
    fn editing_one_module_recompiles_only_it() {
        let mut p = Project::new();
        p.update_source("util", "fn f() -> int { return 10; }")
            .unwrap();
        p.update_source(
            "app",
            "extern fn f() -> int;\nfn main() -> int { return f(); }",
        )
        .unwrap();
        assert_eq!(p.recompiles(), 2);
        let out1 = p.build(&BuildOptions::o2()).unwrap();
        assert_eq!(out1.run(&[]).unwrap().returned, 10);

        // Edit util only.
        p.update_source("util", "fn f() -> int { return 20; }")
            .unwrap();
        assert_eq!(p.recompiles(), 3, "app was not recompiled");
        let out2 = p.build(&BuildOptions::o2()).unwrap();
        assert_eq!(out2.run(&[]).unwrap().returned, 20);
    }

    #[test]
    fn objects_survive_the_byte_format() {
        let mut p = Project::new();
        p.update_source("m", "fn main() -> int { return 5; }")
            .unwrap();
        let objs = p.objects();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].module_name, "m");
    }

    #[test]
    fn frontend_errors_do_not_poison_the_cache() {
        let mut p = Project::new();
        p.update_source("m", "fn main() -> int { return 5; }")
            .unwrap();
        assert!(p.update_source("m", "fn main( -> int {").is_err());
        // The old object is still usable.
        let out = p.build(&BuildOptions::o2()).unwrap();
        assert_eq!(out.run(&[]).unwrap().returned, 5);
    }
}
