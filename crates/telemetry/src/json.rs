//! Minimal deterministic JSON emission.
//!
//! The repository policy is byte-identical output for identical inputs
//! and no external dependencies, so JSON is hand-rolled: fields are
//! written in the order the caller chooses, integers only (no floats,
//! whose shortest-representation formatting would be another source of
//! variation), and strings escaped per RFC 8259.

use std::fmt::Write;

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters as `\u00XX`, plus `\n`, `\r`, `\t`).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted, escaped JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// An append-only writer producing pretty-printed (two-space indented)
/// JSON with caller-controlled field order.
///
/// ```
/// use cmo_telemetry::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_obj(None);
/// w.field_str("schema", "cmo.report.v1");
/// w.begin_obj(Some("loader"));
/// w.field_u64("hits", 3);
/// w.end_obj();
/// w.end_obj();
/// let text = w.finish();
/// assert!(text.starts_with("{\n  \"schema\": \"cmo.report.v1\""));
/// assert!(text.ends_with("}\n"));
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container; `true` once it has a member.
    open: Vec<bool>,
}

impl JsonWriter {
    /// A writer with nothing emitted yet.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.open.len() {
            self.out.push_str("  ");
        }
    }

    /// Writes the comma/newline/key prelude for the next member.
    fn pre(&mut self, name: Option<&str>) {
        if let Some(has_members) = self.open.last_mut() {
            if *has_members {
                self.out.push(',');
            }
            *has_members = true;
            self.newline_indent();
        }
        if let Some(name) = name {
            self.out.push('"');
            escape_into(name, &mut self.out);
            self.out.push_str("\": ");
        }
    }

    /// Opens an object. `name` is `None` for the root value or for
    /// array elements.
    pub fn begin_obj(&mut self, name: Option<&str>) {
        self.pre(name);
        self.out.push('{');
        self.open.push(false);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        let had_members = self.open.pop().expect("end_obj without begin_obj");
        if had_members {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens an array member.
    pub fn begin_arr(&mut self, name: Option<&str>) {
        self.pre(name);
        self.out.push('[');
        self.open.push(false);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        let had_members = self.open.pop().expect("end_arr without begin_arr");
        if had_members {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes an unsigned-integer member.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.pre(Some(name));
        let _ = write!(self.out, "{value}");
    }

    /// Writes a `usize` member.
    pub fn field_usize(&mut self, name: &str, value: usize) {
        self.field_u64(name, value as u64);
    }

    /// Writes a boolean member.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.pre(Some(name));
        let _ = write!(self.out, "{value}");
    }

    /// Writes a string member.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.pre(Some(name));
        self.out.push('"');
        escape_into(value, &mut self.out);
        self.out.push('"');
    }

    /// Writes an unsigned-integer array element.
    pub fn elem_u64(&mut self, value: u64) {
        self.pre(None);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a string array element.
    pub fn elem_str(&mut self, value: &str) {
        self.pre(None);
        self.out.push('"');
        escape_into(value, &mut self.out);
        self.out.push('"');
    }

    /// Returns the finished document with a trailing newline.
    #[must_use]
    pub fn finish(mut self) -> String {
        assert!(self.open.is_empty(), "unclosed container in JsonWriter");
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("é🦀"), "\"é🦀\"");
    }

    #[test]
    fn writes_nested_structure() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_str("schema", "s");
        w.begin_arr(Some("items"));
        w.begin_obj(None);
        w.field_u64("n", 1);
        w.end_obj();
        w.elem_u64(2);
        w.end_arr();
        w.begin_obj(Some("empty"));
        w.end_obj();
        w.end_obj();
        let text = w.finish();
        let expected = "{\n  \"schema\": \"s\",\n  \"items\": [\n    {\n      \"n\": 1\n    },\n    2\n  ],\n  \"empty\": {}\n}\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut w = JsonWriter::new();
            w.begin_obj(None);
            w.field_bool("ok", true);
            w.field_usize("n", 7);
            w.end_obj();
            w.finish()
        };
        assert_eq!(build(), build());
    }
}
