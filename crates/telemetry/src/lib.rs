#![warn(missing_docs)]
//! Deterministic structured telemetry for the compilation pipeline.
//!
//! The paper's entire evaluation (Figures 4, 5 and 6) is
//! observability-driven: loader byte accounting, compaction/offload
//! activity, and selectivity-versus-work curves. This crate is the
//! substrate those measurements flow through:
//!
//! * [`Telemetry`] — a cheaply cloneable, **thread-safe** handle to a
//!   shared event sink. Disabled by default (every operation is a
//!   no-op), enabled with [`Telemetry::enabled`]. Handles are `Send`
//!   and `Sync`, so one sink can be shared by the driver's worker
//!   pool; each handle carries a *worker id* tag
//!   ([`Telemetry::for_worker`]) stamped onto every event it records.
//! * Hierarchical **phase timers** ([`Telemetry::phase`]): each phase
//!   records its span on the *monotonic work-unit clock* (advanced by
//!   [`Telemetry::work`]) plus wall time. Wall time is kept out of all
//!   serialized output so trace *content* is byte-identical across
//!   runs; the work-unit clock is the deterministic stand-in.
//! * Typed **trace events** ([`TraceEvent`]) for NAIM pool-state
//!   transitions, HLO inline/clone/dead-routine decisions, and
//!   selectivity choices. Each recorded event carries the worker id of
//!   the handle that emitted it, and serialization stable-sorts events
//!   on the work-unit clock, so traces are byte-identical regardless
//!   of how work was spread over threads.
//! * A hand-rolled, versioned **JSON encoding** ([`json::JsonWriter`],
//!   [`Telemetry::render_trace`]) — no serde, matching the repository's
//!   deterministic-encoding policy. Schema versions are
//!   [`REPORT_SCHEMA`] and [`TRACE_SCHEMA`].
//!
//! This crate sits below every other workspace crate (it has no
//! dependencies); `cmo-naim`, `cmo-hlo`, `cmo-select`, `cmo-link`, and
//! the `cmo` driver all thread a `Telemetry` handle through their
//! hot paths. The aggregate `CompileReport` lives in the `cmo` crate,
//! which can see every stats struct.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

pub mod json;

use json::escape_into;

/// Schema identifier written into every JSON compile report.
pub const REPORT_SCHEMA: &str = "cmo.report.v1";

/// Schema identifier written as the first line of every trace file.
pub const TRACE_SCHEMA: &str = "cmo.trace.v1";

/// One completed (or still open) phase of the compilation pipeline.
///
/// `name` is the full dotted path (`"hlo.inline"`), so consumers never
/// need to reconstruct the hierarchy from nesting order; `depth` is
/// retained for indented rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Dotted phase path, e.g. `"hlo.inline"`.
    pub name: String,
    /// Nesting depth (0 = top-level phase).
    pub depth: u32,
    /// Work-unit clock reading when the phase started.
    pub start_work: u64,
    /// Work-unit clock reading when the phase ended.
    pub end_work: u64,
    /// Wall-clock duration in nanoseconds. Diagnostic only — NEVER
    /// serialized to JSON, so reports and traces stay deterministic.
    pub wall_nanos: u64,
}

impl PhaseRecord {
    /// Work units spent inside this phase (including children).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.end_work.saturating_sub(self.start_work)
    }
}

/// A typed trace event. Every variant carries only deterministic data
/// (ids, names, counts) — no pointers, no wall time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A NAIM pool-state transition.
    Pool {
        /// What happened: `"expand"` (uncompaction), `"compact"`,
        /// `"offload"` (write to repository), `"fetch"` (read back
        /// from repository), or `"rescue"` (unload-pending pool
        /// reclaimed from the cache at zero cost).
        action: &'static str,
        /// The pool's id within its loader.
        pool: u32,
        /// Pool kind: `"ir"` or `"symtab"`.
        kind: &'static str,
        /// Bytes processed by the transition.
        bytes: u64,
        /// Position in the unload-pending LRU at event time
        /// (0 = least recently used; 0 also for pools not in the
        /// cache).
        lru_pos: u32,
    },
    /// An inlining decision, accepted or rejected.
    Inline {
        /// Caller routine name.
        caller: String,
        /// Callee routine name.
        callee: String,
        /// Call-site id within the caller.
        site: u32,
        /// Whether the site was inlined.
        accepted: bool,
        /// Why: accepted sites report the qualifying heuristic
        /// (`"small"`, `"hot"`); rejected sites the disqualifier
        /// (`"cold"`, `"too_large"`, `"not_dominant"`,
        /// `"growth_cap"`, `"site_gone"`, or `"cross_cluster"` when
        /// the callee lives in a different callgraph cluster than the
        /// caller and partitioned HLO therefore may not touch the
        /// site).
        reason: &'static str,
        /// Profile count of the site (0 when unprofiled).
        count: u64,
    },
    /// A specialized clone was created for a hot constant-argument
    /// callee.
    CloneRoutine {
        /// The original callee.
        callee: String,
        /// The new clone's name.
        clone: String,
        /// Profile count of the site that triggered the clone.
        count: u64,
    },
    /// A routine was found unreachable after optimization and will be
    /// stubbed at link time.
    DeadRoutine {
        /// The dead routine's name.
        routine: String,
    },
    /// One callgraph cluster produced by the HLO partitioner. Emitted
    /// once per cluster, in cluster-index order, when the partition is
    /// computed; the cluster id is also the virtual worker id
    /// (`cluster + 1`) stamped on every event the cluster's
    /// optimization job records.
    Cluster {
        /// Cluster index (0-based, ordered by smallest member routine).
        cluster: u32,
        /// Number of member routines.
        routines: u64,
        /// Call edges with both endpoints inside the cluster — the
        /// only edges its inline/clone passes may transform.
        edges: u64,
    },
    /// A ranked call site was kept or cut by coarse-grained
    /// selectivity.
    SelectSite {
        /// Caller routine name.
        caller: String,
        /// Call-site id within the caller.
        site: u32,
        /// Rank in the frequency-sorted site list (0 = hottest).
        rank: u32,
        /// Profile count of the site.
        count: u64,
        /// Whether the site made the cut.
        selected: bool,
    },
    /// An incremental-build cache decision.
    Cache {
        /// What happened: `"hit"` (entry reused), `"miss"` (entry
        /// absent, recompiling), `"store"` (entry written),
        /// `"invalidate"` (entry present but unusable — corrupted,
        /// truncated, or format-mismatched — so the module falls back
        /// to a full recompile), or `"replay"` (a whole-build hit
        /// replayed the cached image and report).
        action: &'static str,
        /// Granularity: `"module"` (per-module front-end IL) or
        /// `"build"` (whole-program image + report).
        scope: &'static str,
        /// Module name for module-scope events; the build-key digest
        /// for build-scope events.
        name: String,
        /// Payload bytes moved for hits/stores; 0 otherwise.
        bytes: u64,
    },
    /// A mark-and-sweep compaction of the incremental-build cache
    /// repository (`cmocc --gc-cache` or the `--gc-threshold-bytes`
    /// auto-trigger). Wall time deliberately stays out of the trace —
    /// traces are byte-identical across runs and `-j` levels — and is
    /// reported on stderr instead.
    CacheGc {
        /// Bytes reclaimed by the generation swap (old size − new size).
        reclaimed_bytes: u64,
        /// Live records copied into the new generation.
        live_records: u64,
        /// Dangling manifest lines pruned by the same atomic rewrite.
        pruned_lines: u64,
    },
    /// A per-module profile slice planned for an incremental build:
    /// the projection of the profile database onto the routines this
    /// module (and its cross-module inline/clone candidates) can
    /// observe, fingerprinted for cache keying. Emitted once per
    /// module, in input order, on the main thread.
    ProfileSlice {
        /// Module name.
        module: String,
        /// Routine names in the slice's scope.
        routines: u64,
        /// Whether any in-scope routine's recorded shape no longer
        /// matches the current code (the §6.2 staleness signal).
        stale: bool,
        /// Hex 128-bit content hash of the slice.
        fp: String,
    },
    /// A module was placed in or out of the CMO set by selectivity.
    SelectModule {
        /// Module name.
        module: String,
        /// Number of selected sites whose caller or callee lives in
        /// this module.
        sites: u32,
        /// Whether the module will be compiled with CMO.
        selected: bool,
    },
    /// Crash-consistency recovery performed while opening persistent
    /// state: torn bytes truncated, a half-committed generation rolled
    /// back, or an unreadable store recreated from scratch.
    Recover {
        /// What was recovered: `"repository"` or `"manifest"`.
        component: &'static str,
        /// What was done: `"truncate"` (torn tail dropped),
        /// `"rollback"` (uncommitted generation discarded via the
        /// commit journal), or `"recreate"` (store unreadable, started
        /// fresh).
        action: &'static str,
        /// Bytes discarded by the recovery action.
        bytes: u64,
    },
    /// A fault was contained and the build continued in degraded mode
    /// (`--keep-going`, or a cache persist failure that was swallowed).
    Degraded {
        /// The degraded component: `"frontend"` (a compilation unit
        /// failed but the rest of the build went on) or `"cache"`
        /// (cache writes failed; the build ran uncached).
        component: &'static str,
        /// Module name or cache operation name.
        name: String,
        /// The diagnostic that was contained.
        error: String,
    },
    /// A worker job panicked; the pool contained the panic and
    /// returned a structured per-job error instead of tearing down.
    JobPanic {
        /// Index of the panicking job.
        job: u64,
        /// The panic payload (message), when it was a string.
        payload: String,
    },
    /// Rehydration-arena activity in the NAIM loader.
    Arena {
        /// What happened: `"recycle"` (the fetch arena was returned to
        /// the allocator at the end of an enforcement sweep).
        action: &'static str,
        /// Bytes the arena served since the previous recycle. Counted
        /// identically on the zero-copy and the copying fetch path, so
        /// the value does not depend on the storage transport.
        bytes: u64,
    },
    /// Zero-copy storage-view activity in the NAIM repository.
    Mmap {
        /// What happened: `"zero-copy"` (the first repository fetch
        /// served as a borrowed slice from a storage view).
        action: &'static str,
        /// Bytes of the fetch that triggered the event.
        bytes: u64,
    },
    /// Remote shared-cache tier activity. All delays are expressed on
    /// the deterministic work-unit clock (never wall time), so traces
    /// through a remote tier stay byte-identical run to run.
    Remote {
        /// What happened: `"hit"` (blob fetched and verified),
        /// `"miss"` (daemon has no such blob), `"put"` (blob pushed),
        /// `"retry"` (an exchange failed; backing off and retrying),
        /// or `"open"` (the circuit breaker tripped and the build
        /// demoted itself to local-only).
        action: &'static str,
        /// Blob name for hit/miss/put; the failing operation's
        /// description for retry/open.
        name: String,
        /// Payload bytes for hit/put; the seeded backoff delay in
        /// work units for retry; 0 otherwise.
        bytes: u64,
    },
}

impl TraceEvent {
    /// Event-type tag used in the JSON encoding.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Pool { .. } => "pool",
            TraceEvent::Inline { .. } => "inline",
            TraceEvent::CloneRoutine { .. } => "clone",
            TraceEvent::DeadRoutine { .. } => "dead_routine",
            TraceEvent::Cluster { .. } => "cluster",
            TraceEvent::SelectSite { .. } => "select_site",
            TraceEvent::SelectModule { .. } => "select_module",
            TraceEvent::Cache { .. } | TraceEvent::CacheGc { .. } => "cache",
            TraceEvent::ProfileSlice { .. } => "profile_slice",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Degraded { .. } => "degraded",
            TraceEvent::JobPanic { .. } => "job-panic",
            TraceEvent::Arena { .. } => "arena",
            TraceEvent::Mmap { .. } => "mmap",
            TraceEvent::Remote { .. } => "remote",
        }
    }

    /// Writes the event-specific JSON fields (no surrounding braces).
    fn fields_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            TraceEvent::Pool {
                action,
                pool,
                kind,
                bytes,
                lru_pos,
            } => {
                let _ = write!(
                    out,
                    "\"action\":\"{action}\",\"pool\":{pool},\"kind\":\"{kind}\",\"bytes\":{bytes},\"lru_pos\":{lru_pos}"
                );
            }
            TraceEvent::Inline {
                caller,
                callee,
                site,
                accepted,
                reason,
                count,
            } => {
                out.push_str("\"caller\":\"");
                escape_into(caller, out);
                out.push_str("\",\"callee\":\"");
                escape_into(callee, out);
                let _ = write!(
                    out,
                    "\",\"site\":{site},\"accepted\":{accepted},\"reason\":\"{reason}\",\"count\":{count}"
                );
            }
            TraceEvent::CloneRoutine {
                callee,
                clone,
                count,
            } => {
                out.push_str("\"callee\":\"");
                escape_into(callee, out);
                out.push_str("\",\"clone\":\"");
                escape_into(clone, out);
                let _ = write!(out, "\",\"count\":{count}");
            }
            TraceEvent::DeadRoutine { routine } => {
                out.push_str("\"routine\":\"");
                escape_into(routine, out);
                out.push('"');
            }
            TraceEvent::Cluster {
                cluster,
                routines,
                edges,
            } => {
                let _ = write!(
                    out,
                    "\"cluster\":{cluster},\"routines\":{routines},\"edges\":{edges}"
                );
            }
            TraceEvent::SelectSite {
                caller,
                site,
                rank,
                count,
                selected,
            } => {
                out.push_str("\"caller\":\"");
                escape_into(caller, out);
                let _ = write!(
                    out,
                    "\",\"site\":{site},\"rank\":{rank},\"count\":{count},\"selected\":{selected}"
                );
            }
            TraceEvent::SelectModule {
                module,
                sites,
                selected,
            } => {
                out.push_str("\"module\":\"");
                escape_into(module, out);
                let _ = write!(out, "\",\"sites\":{sites},\"selected\":{selected}");
            }
            TraceEvent::ProfileSlice {
                module,
                routines,
                stale,
                fp,
            } => {
                out.push_str("\"module\":\"");
                escape_into(module, out);
                let _ = write!(
                    out,
                    "\",\"routines\":{routines},\"stale\":{stale},\"fp\":\""
                );
                escape_into(fp, out);
                out.push('"');
            }
            TraceEvent::Cache {
                action,
                scope,
                name,
                bytes,
            } => {
                let _ = write!(
                    out,
                    "\"action\":\"{action}\",\"scope\":\"{scope}\",\"name\":\""
                );
                escape_into(name, out);
                let _ = write!(out, "\",\"bytes\":{bytes}");
            }
            TraceEvent::CacheGc {
                reclaimed_bytes,
                live_records,
                pruned_lines,
            } => {
                let _ = write!(
                    out,
                    "\"action\":\"gc\",\"reclaimed_bytes\":{reclaimed_bytes},\"live_records\":{live_records},\"pruned_lines\":{pruned_lines}"
                );
            }
            TraceEvent::Recover {
                component,
                action,
                bytes,
            } => {
                let _ = write!(
                    out,
                    "\"component\":\"{component}\",\"action\":\"{action}\",\"bytes\":{bytes}"
                );
            }
            TraceEvent::Degraded {
                component,
                name,
                error,
            } => {
                let _ = write!(out, "\"component\":\"{component}\",\"name\":\"");
                escape_into(name, out);
                out.push_str("\",\"error\":\"");
                escape_into(error, out);
                out.push('"');
            }
            TraceEvent::JobPanic { job, payload } => {
                let _ = write!(out, "\"job\":{job},\"payload\":\"");
                escape_into(payload, out);
                out.push('"');
            }
            TraceEvent::Arena { action, bytes } | TraceEvent::Mmap { action, bytes } => {
                let _ = write!(out, "\"action\":\"{action}\",\"bytes\":{bytes}");
            }
            TraceEvent::Remote {
                action,
                name,
                bytes,
            } => {
                let _ = write!(out, "\"action\":\"{action}\",\"name\":\"");
                escape_into(name, out);
                let _ = write!(out, "\",\"bytes\":{bytes}");
            }
        }
    }
}

/// One recorded event with its timestamp and phase context.
#[derive(Debug, Clone)]
struct Recorded {
    work: u64,
    worker: u32,
    phase: String,
    event: TraceEvent,
}

/// One event drained from a private sink, ready to be re-stamped into
/// another sink by [`Telemetry::absorb_records`]. The `work` value is
/// relative to the private sink's own clock (which starts at zero);
/// the phase context is dropped because the absorbing sink supplies
/// its own open phase path.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Reading of the *private* work-unit clock when the event fired.
    pub work: u64,
    /// Worker id the recording handle was tagged with.
    pub worker: u32,
    /// The event itself.
    pub event: TraceEvent,
}

#[derive(Debug, Default)]
struct Inner {
    work: u64,
    phases: Vec<PhaseRecord>,
    /// Indices into `phases` of the currently open phases, innermost
    /// last.
    open: Vec<usize>,
    events: Vec<Recorded>,
}

impl Inner {
    fn phase_path(&self) -> String {
        match self.open.last() {
            Some(&idx) => self.phases[idx].name.clone(),
            None => String::new(),
        }
    }
}

/// Locks a sink, recovering from a poisoned mutex: telemetry must keep
/// working (and stay readable) even if some worker thread panicked.
fn lock(sink: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    sink.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cheaply cloneable, thread-safe handle to a shared telemetry sink.
///
/// The default handle is *disabled*: every method is a no-op, so
/// instrumented code paths cost one branch when telemetry is off.
/// Clones share the same sink, which is how one handle threads through
/// the loader, HLO, selection, the linker, and the driver while the
/// caller keeps a view of everything recorded. The sink is guarded by
/// a mutex, so handles may be shared freely with the worker pool; each
/// handle additionally carries a logical *worker id*
/// ([`Telemetry::for_worker`]) stamped onto the events it records.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
    worker: u32,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(sink) => {
                let inner = lock(sink);
                write!(
                    f,
                    "Telemetry(worker={}, work={}, phases={}, events={})",
                    self.worker,
                    inner.work,
                    inner.phases.len(),
                    inner.events.len()
                )
            }
        }
    }
}

impl Telemetry {
    /// A disabled (no-op) handle; identical to `Telemetry::default()`.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            worker: 0,
        }
    }

    /// An enabled handle with an empty sink, tagged as worker 0 (the
    /// driver's main thread).
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
            worker: 0,
        }
    }

    /// A handle to the *same* sink tagged with a different logical
    /// worker id. Events recorded through the returned handle carry
    /// `worker` in the serialized trace; the work clock and phase
    /// stack stay shared.
    #[must_use]
    pub fn for_worker(&self, worker: u32) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            worker,
        }
    }

    /// The logical worker id this handle stamps onto events.
    #[must_use]
    pub fn worker_id(&self) -> u32 {
        self.worker
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the monotonic work-unit clock by `units`.
    ///
    /// Work units are the deterministic time base: simulated NAIM
    /// traffic costs, per-routine analysis and lowering costs. They
    /// accumulate across the whole compilation.
    pub fn work(&self, units: u64) {
        if let Some(sink) = &self.inner {
            lock(sink).work += units;
        }
    }

    /// Current reading of the work-unit clock.
    #[must_use]
    pub fn current_work(&self) -> u64 {
        self.inner.as_ref().map_or(0, |sink| lock(sink).work)
    }

    /// Opens a phase; the returned guard closes it on drop.
    ///
    /// Phases nest: a phase opened while another is open becomes its
    /// child, and its dotted path (`"hlo.inline"`) records the chain.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        let idx = self.inner.as_ref().map(|sink| {
            let mut inner = lock(sink);
            let path = match inner.open.last() {
                Some(&p) => format!("{}.{name}", inner.phases[p].name),
                None => name.to_owned(),
            };
            let depth = inner.open.len() as u32;
            let start_work = inner.work;
            let idx = inner.phases.len();
            inner.phases.push(PhaseRecord {
                name: path,
                depth,
                start_work,
                end_work: start_work,
                wall_nanos: 0,
            });
            inner.open.push(idx);
            idx
        });
        PhaseGuard {
            telemetry: self.clone(),
            idx,
            started: Instant::now(),
        }
    }

    /// Records a trace event, stamped with the current work-unit clock,
    /// the open phase path, and this handle's worker id.
    pub fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.inner {
            let mut inner = lock(sink);
            let work = inner.work;
            let phase = inner.phase_path();
            inner.events.push(Recorded {
                work,
                worker: self.worker,
                phase,
                event,
            });
        }
    }

    /// Takes every event recorded in this sink, returning them with
    /// the final clock reading: `(records, total_work)`.
    ///
    /// This is the first half of the deterministic parallel-merge
    /// protocol: a worker job records into a *private* enabled sink
    /// (clock starting at zero), and when the job completes the driver
    /// drains it and feeds the records to
    /// [`Telemetry::absorb_records`] on the main sink — in a fixed
    /// (index) order, so the merged trace does not depend on
    /// scheduling. A disabled handle returns `(vec![], 0)`.
    #[must_use]
    pub fn drain_records(&self) -> (Vec<TraceRecord>, u64) {
        match &self.inner {
            None => (Vec::new(), 0),
            Some(sink) => {
                let mut inner = lock(sink);
                let records = std::mem::take(&mut inner.events)
                    .into_iter()
                    .map(|rec| TraceRecord {
                        work: rec.work,
                        worker: rec.worker,
                        event: rec.event,
                    })
                    .collect();
                (records, inner.work)
            }
        }
    }

    /// Splices records drained from a private sink into this sink and
    /// advances the clock by the private sink's total work.
    ///
    /// Each record is re-stamped at `current clock + record.work` and
    /// tagged with this sink's innermost open phase path; the record's
    /// own worker id is preserved. Callers absorb one drained sink
    /// after another in a deterministic order (e.g. cluster index), so
    /// the resulting clock values — and therefore the rendered trace —
    /// are byte-identical no matter how many threads did the work.
    /// No-op on a disabled handle.
    pub fn absorb_records(&self, records: Vec<TraceRecord>, total_work: u64) {
        if let Some(sink) = &self.inner {
            let mut inner = lock(sink);
            let base = inner.work;
            let phase = inner.phase_path();
            for rec in records {
                inner.events.push(Recorded {
                    work: base + rec.work,
                    worker: rec.worker,
                    phase: phase.clone(),
                    event: rec.event,
                });
            }
            inner.work = base + total_work;
        }
    }

    /// All phases recorded so far, in open order. Open phases report
    /// `end_work == start_work` until their guard drops.
    #[must_use]
    pub fn phases(&self) -> Vec<PhaseRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |sink| lock(sink).phases.clone())
    }

    /// Number of trace events recorded so far.
    #[must_use]
    pub fn n_events(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |sink| lock(sink).events.len())
    }

    /// Renders the trace in the versioned JSON-lines encoding: a
    /// `{"schema":"cmo.trace.v1"}` header line, then one object per
    /// event with `work`, `phase`, `worker`, `event`, and the event
    /// fields.
    ///
    /// Events are stable-sorted on the work-unit clock before
    /// rendering, so the serialized order depends only on the
    /// deterministic clock (ties keep recording order). Contains no
    /// wall-clock data: two identical compilations render
    /// byte-identical traces.
    #[must_use]
    pub fn render_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{{\"schema\":\"{TRACE_SCHEMA}\"}}");
        if let Some(sink) = &self.inner {
            let mut events = lock(sink).events.clone();
            events.sort_by_key(|rec| rec.work);
            for rec in &events {
                let _ = write!(out, "{{\"work\":{},\"phase\":\"", rec.work);
                escape_into(&rec.phase, &mut out);
                let _ = write!(
                    out,
                    "\",\"worker\":{},\"event\":\"{}\",",
                    rec.worker,
                    rec.event.tag()
                );
                rec.event.fields_into(&mut out);
                out.push_str("}\n");
            }
        }
        out
    }
}

/// Closes a phase opened by [`Telemetry::phase`] when dropped.
#[must_use = "dropping the guard immediately would close the phase at once"]
pub struct PhaseGuard {
    telemetry: Telemetry,
    idx: Option<usize>,
    started: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let (Some(sink), Some(idx)) = (&self.telemetry.inner, self.idx) {
            let mut inner = lock(sink);
            inner.open.retain(|&i| i != idx);
            let work = inner.work;
            let rec = &mut inner.phases[idx];
            rec.end_work = work;
            rec.wall_nanos = self.started.elapsed().as_nanos() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        t.work(100);
        t.emit(TraceEvent::DeadRoutine {
            routine: "x".into(),
        });
        let _p = t.phase("parse");
        assert!(!t.is_enabled());
        assert_eq!(t.current_work(), 0);
        assert_eq!(t.n_events(), 0);
        assert!(t.phases().is_empty());
        assert_eq!(t.render_trace(), "{\"schema\":\"cmo.trace.v1\"}\n");
    }

    #[test]
    fn phases_nest_and_record_work_spans() {
        let t = Telemetry::enabled();
        {
            let _outer = t.phase("hlo");
            t.work(5);
            {
                let _inner = t.phase("inline");
                t.work(7);
            }
            t.work(1);
        }
        let phases = t.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "hlo");
        assert_eq!(phases[0].depth, 0);
        assert_eq!(phases[0].work(), 13);
        assert_eq!(phases[1].name, "hlo.inline");
        assert_eq!(phases[1].depth, 1);
        assert_eq!(phases[1].start_work, 5);
        assert_eq!(phases[1].end_work, 12);
    }

    #[test]
    fn events_are_stamped_with_work_and_phase() {
        let t = Telemetry::enabled();
        let _p = t.phase("naim");
        t.work(42);
        t.emit(TraceEvent::Pool {
            action: "compact",
            pool: 3,
            kind: "ir",
            bytes: 256,
            lru_pos: 0,
        });
        let trace = t.render_trace();
        let mut lines = trace.lines();
        assert_eq!(lines.next(), Some("{\"schema\":\"cmo.trace.v1\"}"));
        let ev = lines.next().unwrap();
        assert!(ev.contains("\"work\":42"));
        assert!(ev.contains("\"phase\":\"naim\""));
        assert!(ev.contains("\"worker\":0"));
        assert!(ev.contains("\"event\":\"pool\""));
        assert!(ev.contains("\"action\":\"compact\""));
        assert!(ev.contains("\"lru_pos\":0"));
    }

    #[test]
    fn fault_events_encode_their_fields() {
        let t = Telemetry::enabled();
        t.emit(TraceEvent::Recover {
            component: "repository",
            action: "truncate",
            bytes: 17,
        });
        t.emit(TraceEvent::Degraded {
            component: "module",
            name: "app".into(),
            error: "parse error: \"oops\"".into(),
        });
        t.emit(TraceEvent::JobPanic {
            job: 2,
            payload: "boom".into(),
        });
        let trace = t.render_trace();
        assert!(
            trace.contains(
                r#""event":"recover","component":"repository","action":"truncate","bytes":17"#
            ),
            "trace: {trace}"
        );
        assert!(
            trace.contains(
                r#""event":"degraded","component":"module","name":"app","error":"parse error: \"oops\"""#
            ),
            "trace: {trace}"
        );
        assert!(
            trace.contains(r#""event":"job-panic","job":2,"payload":"boom""#),
            "trace: {trace}"
        );
    }

    #[test]
    fn worker_handles_share_the_sink_and_tag_events() {
        let t = Telemetry::enabled();
        let w = t.for_worker(3);
        assert_eq!(w.worker_id(), 3);
        w.work(5);
        w.emit(TraceEvent::DeadRoutine {
            routine: "dead".into(),
        });
        // Work clock and events are shared with the original handle.
        assert_eq!(t.current_work(), 5);
        assert_eq!(t.n_events(), 1);
        let trace = t.render_trace();
        assert!(trace.contains("\"worker\":3"), "trace: {trace}");
    }

    #[test]
    fn trace_is_sorted_on_the_work_clock() {
        // Record events out of clock order (as interleaved workers
        // could), then check the render is sorted and stable.
        let t = Telemetry::enabled();
        t.work(10);
        t.emit(TraceEvent::DeadRoutine {
            routine: "b".into(),
        });
        let late = t.for_worker(1);
        late.emit(TraceEvent::DeadRoutine {
            routine: "c".into(),
        });
        // A second sink event at an earlier clock cannot happen through
        // the shared clock, so splice one in via a fresh handle merged
        // by hand: emit before advancing on a new telemetry and compare
        // orderings purely on the rendered output of this sink.
        let trace = t.render_trace();
        let lines: Vec<&str> = trace.lines().skip(1).collect();
        assert_eq!(lines.len(), 2);
        // Ties on work keep recording order (stable sort).
        assert!(lines[0].contains("\"routine\":\"b\""));
        assert!(lines[1].contains("\"routine\":\"c\""));
        assert!(lines[1].contains("\"worker\":1"));
    }

    #[test]
    fn cache_events_serialize_all_fields() {
        let t = Telemetry::enabled();
        t.emit(TraceEvent::Cache {
            action: "hit",
            scope: "module",
            name: "alpha\"x".into(),
            bytes: 512,
        });
        let trace = t.render_trace();
        let ev = trace.lines().nth(1).unwrap();
        assert!(ev.contains("\"event\":\"cache\""), "{ev}");
        assert!(ev.contains("\"action\":\"hit\""), "{ev}");
        assert!(ev.contains("\"scope\":\"module\""), "{ev}");
        assert!(ev.contains("\"name\":\"alpha\\\"x\""), "{ev}");
        assert!(ev.contains("\"bytes\":512"), "{ev}");
    }

    #[test]
    fn remote_events_serialize_all_fields() {
        let t = Telemetry::enabled();
        t.emit(TraceEvent::Remote {
            action: "hit",
            name: "repo.naim".into(),
            bytes: 2048,
        });
        t.emit(TraceEvent::Remote {
            action: "retry",
            name: "get repo.naim".into(),
            bytes: 12,
        });
        let trace = t.render_trace();
        assert!(
            trace.contains(r#""event":"remote","action":"hit","name":"repo.naim","bytes":2048"#),
            "trace: {trace}"
        );
        assert!(
            trace
                .contains(r#""event":"remote","action":"retry","name":"get repo.naim","bytes":12"#),
            "trace: {trace}"
        );
        // The remote tier's backoff is on the work clock, never wall time.
        assert!(!trace.contains("wall"), "{trace}");
        assert!(!trace.contains("nanos"), "{trace}");
    }

    #[test]
    fn cache_gc_event_serializes_all_fields() {
        let t = Telemetry::enabled();
        t.emit(TraceEvent::CacheGc {
            reclaimed_bytes: 4096,
            live_records: 7,
            pruned_lines: 2,
        });
        let trace = t.render_trace();
        let ev = trace.lines().nth(1).unwrap();
        assert!(ev.contains("\"event\":\"cache\""), "{ev}");
        assert!(ev.contains("\"action\":\"gc\""), "{ev}");
        assert!(ev.contains("\"reclaimed_bytes\":4096"), "{ev}");
        assert!(ev.contains("\"live_records\":7"), "{ev}");
        assert!(ev.contains("\"pruned_lines\":2"), "{ev}");
        // GC is traced without wall time, like everything else.
        assert!(!trace.contains("wall"), "{trace}");
        assert!(!trace.contains("nanos"), "{trace}");
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();

        // And actually usable across threads: four workers hammer the
        // shared sink concurrently.
        let t = Telemetry::enabled();
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let h = t.for_worker(w);
                s.spawn(move || {
                    for _ in 0..100 {
                        h.work(1);
                        h.emit(TraceEvent::DeadRoutine {
                            routine: format!("r{w}"),
                        });
                    }
                });
            }
        });
        assert_eq!(t.current_work(), 400);
        assert_eq!(t.n_events(), 400);
        // Rendered trace is sorted on the work clock.
        let trace = t.render_trace();
        let mut last = 0u64;
        for line in trace.lines().skip(1) {
            let work: u64 = line
                .split("\"work\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|n| n.parse().ok())
                .unwrap();
            assert!(work >= last, "trace not sorted: {trace}");
            last = work;
        }
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.work(9);
        u.emit(TraceEvent::DeadRoutine {
            routine: "gone".into(),
        });
        assert_eq!(t.current_work(), 9);
        assert_eq!(t.n_events(), 1);
    }

    #[test]
    fn cluster_event_serializes_all_fields() {
        let t = Telemetry::enabled();
        t.emit(TraceEvent::Cluster {
            cluster: 2,
            routines: 5,
            edges: 9,
        });
        let trace = t.render_trace();
        let ev = trace.lines().nth(1).unwrap();
        assert!(ev.contains("\"event\":\"cluster\""), "{ev}");
        assert!(ev.contains("\"cluster\":2"), "{ev}");
        assert!(ev.contains("\"routines\":5"), "{ev}");
        assert!(ev.contains("\"edges\":9"), "{ev}");
    }

    #[test]
    fn drained_records_absorb_deterministically() {
        // Two "cluster" sinks record independently; absorbing them in
        // index order yields one fixed trace regardless of which sink
        // did its work first.
        let cluster = |worker: u32, routine: &str| {
            let t = Telemetry::enabled().for_worker(worker);
            t.work(10);
            t.emit(TraceEvent::DeadRoutine {
                routine: routine.into(),
            });
            t.work(5);
            t.drain_records()
        };
        let (r0, w0) = cluster(1, "a");
        let (r1, w1) = cluster(2, "b");

        let main = Telemetry::enabled();
        let _p = main.phase("hlo");
        main.work(100);
        main.absorb_records(r0.clone(), w0);
        main.absorb_records(r1.clone(), w1);
        assert_eq!(main.current_work(), 130);
        let trace = main.render_trace();
        let lines: Vec<&str> = trace.lines().skip(1).collect();
        assert_eq!(lines.len(), 2);
        // First cluster re-stamped at 100 + 10, second at 115 + 10,
        // both inside the absorbing sink's open phase.
        assert!(lines[0].contains("\"work\":110"), "{trace}");
        assert!(lines[0].contains("\"worker\":1"), "{trace}");
        assert!(lines[0].contains("\"phase\":\"hlo\""), "{trace}");
        assert!(lines[1].contains("\"work\":125"), "{trace}");
        assert!(lines[1].contains("\"worker\":2"), "{trace}");

        // Same drains absorbed into a fresh sink give the same bytes.
        let again = Telemetry::enabled();
        let _p2 = again.phase("hlo");
        again.work(100);
        again.absorb_records(r0, w0);
        again.absorb_records(r1, w1);
        assert_eq!(trace, again.render_trace());
    }

    #[test]
    fn drain_on_disabled_handle_is_empty() {
        let t = Telemetry::disabled();
        let (records, work) = t.drain_records();
        assert!(records.is_empty());
        assert_eq!(work, 0);
        t.absorb_records(Vec::new(), 7); // no-op, must not panic
        assert_eq!(t.current_work(), 0);
    }

    #[test]
    fn trace_is_deterministic_and_wall_free() {
        let run = || {
            let t = Telemetry::enabled();
            let _p = t.phase("hlo");
            t.work(3);
            t.emit(TraceEvent::Inline {
                caller: "main".into(),
                callee: "f\"q\"".into(),
                site: 1,
                accepted: true,
                reason: "small",
                count: 10,
            });
            t.render_trace()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("f\\\"q\\\""), "names are JSON-escaped: {a}");
        assert!(!a.contains("nanos"), "no wall time in traces");
    }
}
