//! Routine cloning (§3 lists it among HLO's transformations).
//!
//! When a hot call site passes constant arguments but the callee is too
//! big to inline, HLO clones the callee, substitutes the constants into
//! the clone's body, and retargets the site. The clone is
//! module-internal; downstream local optimization specializes it (mode
//! switches fold, dead arms disappear) exactly as it would an inlined
//! copy — without duplicating the callee into the caller's body. Sites
//! passing the *same* constants share one clone.

use crate::cluster::{merge_outcomes, plan_clusters, run_clusters_seq};
use crate::session::HloSession;
use cmo_ir::{Const, Instr, RoutineBody, RoutineId};
use cmo_naim::NaimError;
use std::collections::BTreeSet;

/// Cloning heuristics.
#[derive(Debug, Clone)]
pub struct CloneOptions {
    /// Minimum site count to consider cloning.
    pub min_count: u64,
    /// Only clone callees *bigger* than this (smaller ones should have
    /// been inlined instead).
    pub min_callee_il: u32,
    /// Upper bound on clones created (code-growth guard).
    pub max_clones: u32,
    /// Fine-grained selectivity: only these callers' sites clone.
    pub targets: Option<BTreeSet<RoutineId>>,
}

impl Default for CloneOptions {
    fn default() -> Self {
        CloneOptions {
            min_count: 128,
            min_callee_il: 120,
            max_clones: 32,
            targets: None,
        }
    }
}

/// Outcome of a cloning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloneStats {
    /// Clones created.
    pub clones: u64,
    /// Call sites retargeted to a clone (≥ clones when shared).
    pub retargeted: u64,
}

/// Constant arguments at a call site: `None` entries are unknown.
pub(crate) type ConstSig = Vec<Option<Const>>;

pub(crate) fn const_sig_key(sig: &ConstSig) -> String {
    sig.iter()
        .map(|c| match c {
            None => "_".to_owned(),
            Some(Const::I(v)) => format!("i{v}"),
            Some(Const::F(v)) => format!("f{:x}", v.to_bits()),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Finds the constant-argument signature of `site` in `caller`,
/// using the same last-definition-before-the-call scan as the inliner.
pub(crate) fn site_const_args(
    caller: &RoutineBody,
    site: u32,
) -> Option<(Vec<cmo_ir::VReg>, ConstSig)> {
    for block in &caller.blocks {
        for (ii, instr) in block.instrs.iter().enumerate() {
            if let Instr::Call { site: s, args, .. } = instr {
                if s.0 == site {
                    let mut sig: ConstSig = vec![None; args.len()];
                    for (k, &arg) in args.iter().enumerate() {
                        for prev in block.instrs[..ii].iter().rev() {
                            if prev.def() == Some(arg) {
                                if let Instr::Const { value, .. } = prev {
                                    sig[k] = Some(*value);
                                }
                                break;
                            }
                        }
                    }
                    return Some((args.clone(), sig));
                }
            }
        }
    }
    None
}

/// Builds the specialized body: every load of a constant parameter
/// becomes that constant (parameters the callee reassigns are left
/// alone).
pub(crate) fn specialize(callee: &RoutineBody, sig: &ConstSig) -> RoutineBody {
    let mut sig = sig.clone();
    for block in &callee.blocks {
        for instr in &block.instrs {
            if let Instr::StoreLocal { local, .. } = instr {
                if let Some(slot) = sig.get_mut(local.index()) {
                    *slot = None;
                }
            }
        }
    }
    let mut body = callee.clone();
    for block in &mut body.blocks {
        for instr in &mut block.instrs {
            if let Instr::LoadLocal { dst, local } = instr {
                if let Some(Some(value)) = sig.get(local.index()) {
                    *instr = Instr::Const {
                        dst: *dst,
                        value: *value,
                    };
                }
            }
        }
    }
    body
}

/// Runs the cloning pass. Requires profile data to find hot sites; on
/// unprofiled sessions it does nothing (the paper only applies
/// aggressive specialization where profiles justify the growth).
///
/// Like [`crate::inline_pass`], this is a sequential wrapper over the
/// cluster pipeline in [`crate::cluster`]; the driver fans the same
/// clusters out across worker threads.
///
/// # Errors
///
/// Propagates loader failures.
pub fn clone_pass(
    session: &mut HloSession,
    options: &CloneOptions,
) -> Result<CloneStats, NaimError> {
    let plan = plan_clusters(session, None, Some(options))?;
    let config = session.loader_config();
    let tel = session.telemetry().clone();
    let outcomes = run_clusters_seq(&session.program, &plan, &config, None, Some(options), &tel)?;
    let (_, stats) = merge_outcomes(session, &plan, outcomes)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::{link_objects, validate::validate_unit};
    use cmo_naim::NaimConfig;
    use cmo_profile::{ProbeKey, ProfileDb, RoutineShape};

    /// A big callee with a mode parameter, called hot with mode=0.
    fn fixture() -> (HloSession, RoutineId) {
        let big_arm: String = (0..40)
            .map(|i| format!("acc = acc + (acc / (mode + {})) % 97;", i + 2))
            .collect::<Vec<_>>()
            .join("\n");
        let lib = format!(
            r#"
            fn work(x: int, mode: int) -> int {{
                var acc: int = x;
                if (mode == 0) {{ acc = acc + 1; }}
                else {{ {big_arm} }}
                return acc;
            }}
            "#
        );
        let app = r#"
            extern fn work(x: int, mode: int) -> int;
            fn main() -> int {
                var i: int = 0;
                var acc: int = 0;
                while (i < 100) { acc = acc + work(i, 0); i = i + 1; }
                return acc;
            }
        "#;
        let unit = link_objects(vec![
            compile_module("app", app).unwrap(),
            compile_module("lib", &lib).unwrap(),
        ])
        .unwrap();

        // Fabricate a fresh profile matching the current shapes.
        let mut db = ProfileDb::new();
        let shapes: Vec<(String, RoutineShape)> = unit
            .bodies
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let name = unit
                    .program
                    .name(unit.program.routine(RoutineId::from_index(i)).name)
                    .to_owned();
                (
                    name,
                    RoutineShape {
                        n_blocks: b.blocks.len() as u32,
                        n_sites: b.next_site,
                        fingerprint: b.fingerprint(),
                    },
                )
            })
            .collect();
        db.record(
            &[
                (ProbeKey::block("main", 0), 1),
                (ProbeKey::site("main", 0), 1000),
                (ProbeKey::block("work", 0), 1000),
            ],
            &shapes,
        );
        let session = HloSession::new(unit, NaimConfig::default(), Some(&db)).unwrap();
        let main = session.program.find_routine("main").unwrap();
        (session, main)
    }

    #[test]
    fn hot_constant_site_gets_a_specialized_clone() {
        let (mut s, main) = fixture();
        let before_routines = s.program.routines().len();
        let stats = clone_pass(&mut s, &CloneOptions::default()).unwrap();
        assert_eq!(stats.clones, 1);
        assert_eq!(stats.retargeted, 1);
        assert_eq!(s.program.routines().len(), before_routines + 1);

        // The retargeted call in main points at the clone.
        let clone_id = RoutineId::from_index(before_routines);
        let body = s.body(main).unwrap().clone();
        let mut call_targets = Vec::new();
        for block in &body.blocks {
            for instr in &block.instrs {
                if let Instr::Call { callee, .. } = instr {
                    call_targets.push(callee.id());
                }
            }
        }
        assert_eq!(call_targets, vec![clone_id]);
        assert!(s
            .program
            .name(s.program.routine(clone_id).name)
            .contains("$clone"));

        // The clone body validates and has the mode loads folded.
        let clone_body = s.body(clone_id).unwrap().clone();
        let mut bodies = Vec::new();
        for i in 0..s.program.routines().len() {
            bodies.push(s.body(RoutineId::from_index(i)).unwrap().clone());
        }
        validate_unit(&s.program, &bodies).unwrap();
        let loads_mode = clone_body
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::LoadLocal { local, .. } if local.index() == 1))
            .count();
        assert_eq!(loads_mode, 0, "mode parameter fully substituted");
    }

    #[test]
    fn equal_signatures_share_one_clone() {
        let (mut s, _) = fixture();
        // First pass creates the clone, a second pass finds nothing new
        // (the site now targets the clone, and the clone's own sites
        // carry no constants).
        let first = clone_pass(&mut s, &CloneOptions::default()).unwrap();
        let second = clone_pass(&mut s, &CloneOptions::default()).unwrap();
        assert_eq!(first.clones, 1);
        assert_eq!(second.clones, 0);
    }

    #[test]
    fn cold_or_nonconstant_sites_do_not_clone() {
        let (mut s, _) = fixture();
        let opts = CloneOptions {
            min_count: 1_000_000, // nothing is that hot
            ..CloneOptions::default()
        };
        let stats = clone_pass(&mut s, &opts).unwrap();
        assert_eq!(stats.clones, 0);
    }
}
