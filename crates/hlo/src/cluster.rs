//! Cluster-partitioned HLO: WHOPR-style parallel inlining/cloning.
//!
//! The monolithic inline/clone pipeline becomes a three-step protocol:
//!
//! 1. [`plan_clusters`] condenses the call graph into independent
//!    clusters (no coupled edge leaves a cluster) and *extracts* each
//!    cluster's member bodies and maintained counts out of the main
//!    session into self-contained [`ClusterInput`]s.
//! 2. [`run_cluster`] optimizes one cluster against a **private** NAIM
//!    loader and a **private** telemetry sink — no shared mutable
//!    state, so the driver may fan clusters out across worker threads.
//!    Clones are created under *provisional* routine ids above the
//!    pre-pass id space.
//! 3. [`merge_outcomes`] folds outcomes back in ascending cluster
//!    order: bodies, counts and il sizes are written back, provisional
//!    clone ids are remapped to their final program ids, loader
//!    activity is absorbed as a concurrent peak, and trace records are
//!    re-stamped onto the main work clock.
//!
//! Because every merge step is keyed on the cluster *index* — never on
//! completion order — `HloStats`, `InlineStats`, the compile report
//! and the trace are byte-identical at every `-j` level.

use crate::callgraph::{CallEdge, CallGraph, PartitionStats};
use crate::clone::{const_sig_key, site_const_args, specialize, CloneOptions, CloneStats};
use crate::inline::{splice_call, InlineOptions, InlineStats};
use crate::session::HloSession;
use cmo_ir::{
    CallSiteId, Instr, Linkage, ModuleId, Program, RoutineBody, RoutineId, RoutineMeta, Signature,
    Transitory,
};
use cmo_naim::{
    Loader, LoaderStats, MemClass, MemorySnapshot, NaimConfig, NaimError, PoolId, PoolKind,
};
use cmo_telemetry::{Telemetry, TraceEvent, TraceRecord};
use std::collections::BTreeMap;

/// Base of the private pool-id namespace for per-cluster loaders:
/// far above anything the main session allocates, and strided by the
/// cluster count so no two clusters ever share a pool id in the trace.
const CLUSTER_POOL_BASE: u32 = 1_000_000;

/// A self-contained unit of parallel HLO work: one cluster's member
/// routines with their bodies and maintained profile counts, extracted
/// from the session at plan time.
#[derive(Debug)]
pub struct ClusterInput {
    /// Cluster index (position in the plan; also the merge order).
    index: usize,
    /// Member routines, ascending.
    members: Vec<RoutineId>,
    bodies: Vec<RoutineBody>,
    counts: Vec<Option<Vec<u64>>>,
    site_counts: Vec<BTreeMap<u32, u64>>,
    il_size: Vec<u32>,
}

/// The partition plus the extracted per-cluster inputs, ready to fan
/// out.
#[derive(Debug)]
pub struct ClusterPlan {
    stats: PartitionStats,
    inputs: Vec<ClusterInput>,
    /// Number of routines when the plan was taken: provisional clone
    /// ids start here.
    id_space: usize,
    /// Session memory when the fan-out begins; cluster peaks fold on
    /// top of this as concurrent peaks.
    at_split: MemorySnapshot,
}

impl ClusterPlan {
    /// The per-cluster work units, in cluster order.
    #[must_use]
    pub fn inputs(&self) -> &[ClusterInput] {
        &self.inputs
    }

    /// Partition summary counters for the compile report.
    #[must_use]
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }
}

/// A clone created inside a cluster, carried out under a provisional
/// id and registered with the program only at merge time (the shared
/// program is read-only while workers run).
#[derive(Debug)]
struct PendingClone {
    name: String,
    module: ModuleId,
    sig: Signature,
    source_lines: u32,
    il_size: u32,
    body: RoutineBody,
    counts: Option<Vec<u64>>,
    site_counts: BTreeMap<u32, u64>,
}

/// Everything one finished cluster hands back for the index-ordered
/// merge.
#[derive(Debug)]
pub struct ClusterOutcome {
    members: Vec<RoutineId>,
    bodies: Vec<RoutineBody>,
    counts: Vec<Option<Vec<u64>>>,
    site_counts: Vec<BTreeMap<u32, u64>>,
    il_size: Vec<u32>,
    pending: Vec<PendingClone>,
    /// Inline counters for this cluster.
    pub inline_stats: InlineStats,
    /// Clone counters for this cluster.
    pub clone_stats: CloneStats,
    loader_stats: LoaderStats,
    peak: MemorySnapshot,
    records: Vec<TraceRecord>,
    work: u64,
}

/// Partitions the session's call graph and extracts per-cluster
/// inputs. The coupling predicate deliberately *over*-approximates the
/// inline and clone candidate tests (dominance and growth caps are
/// ignored): over-coupling only shrinks parallelism, while any
/// candidate the predicate missed is rejected at inline time with the
/// `cross_cluster` reason — so correctness never depends on the
/// predicate being tight.
///
/// # Errors
///
/// Propagates loader failures.
pub fn plan_clusters(
    session: &mut HloSession,
    inline: Option<&InlineOptions>,
    clone: Option<&CloneOptions>,
) -> Result<ClusterPlan, NaimError> {
    let graph = CallGraph::build(session)?;
    let n = session.n_routines();
    let max_cluster = std::cmp::max(16, n / 8);
    let program = &session.program;
    let may_couple = |e: &CallEdge| {
        let callee_il = program.routine(e.callee).il_size;
        let inline_couples = inline.is_some_and(|o| {
            o.targets.as_ref().is_none_or(|t| t.contains(&e.caller))
                && (callee_il <= o.small_callee_il
                    || (e.count >= o.hot_site_min_count && callee_il <= o.hot_callee_il))
        });
        let clone_couples = clone.is_some_and(|o| {
            o.targets.as_ref().is_none_or(|t| t.contains(&e.caller))
                && e.count >= o.min_count
                && callee_il > o.min_callee_il
        });
        inline_couples || clone_couples
    };
    let partition = graph.partition(n, max_cluster, may_couple);
    let tel = session.telemetry().clone();
    if tel.is_enabled() {
        for (k, c) in partition.clusters.iter().enumerate() {
            tel.emit(TraceEvent::Cluster {
                cluster: k as u32,
                routines: c.members.len() as u64,
                edges: c.edges,
            });
        }
    }
    let mut inputs = Vec::with_capacity(partition.clusters.len());
    for (index, cluster) in partition.clusters.iter().enumerate() {
        let mut bodies = Vec::with_capacity(cluster.members.len());
        let mut counts = Vec::with_capacity(cluster.members.len());
        let mut site_counts = Vec::with_capacity(cluster.members.len());
        let mut il_size = Vec::with_capacity(cluster.members.len());
        for &rid in &cluster.members {
            bodies.push(session.body(rid)?.clone());
            session.unload(rid)?;
            counts.push(session.block_counts(rid).map(<[u64]>::to_vec));
            site_counts.push(session.site_counts_of(rid).clone());
            il_size.push(session.program.routine(rid).il_size);
        }
        inputs.push(ClusterInput {
            index,
            members: cluster.members.clone(),
            bodies,
            counts,
            site_counts,
            il_size,
        });
    }
    session.unload_all()?;
    Ok(ClusterPlan {
        stats: partition.stats(),
        inputs,
        id_space: n,
        at_split: session.memory(),
    })
}

/// The per-cluster working state: a private loader over the member
/// bodies plus locally maintained counts and il sizes. The shared
/// [`Program`] is read-only (names, modules, signatures); anything a
/// pass mutates lives here.
struct ClusterCx<'a> {
    program: &'a Program,
    members: Vec<RoutineId>,
    /// `slot_of[member] = slot`; non-members are absent (cross-cluster).
    slot_of: BTreeMap<RoutineId, usize>,
    loader: Loader<Transitory>,
    pool: Vec<PoolId>,
    counts: Vec<Option<Vec<u64>>>,
    site_counts: Vec<BTreeMap<u32, u64>>,
    il_size: Vec<u32>,
    id_space: usize,
    pending: Vec<PendingClone>,
    tel: Telemetry,
}

impl<'a> ClusterCx<'a> {
    fn is_local(&self, rid: RoutineId) -> bool {
        self.slot_of.contains_key(&rid)
    }

    fn slot(&self, rid: RoutineId) -> usize {
        self.slot_of[&rid]
    }

    fn il(&self, rid: RoutineId) -> u32 {
        self.il_size[self.slot(rid)]
    }

    fn entry_count(&self, rid: RoutineId) -> u64 {
        self.counts[self.slot(rid)]
            .as_ref()
            .and_then(|c| c.first().copied())
            .unwrap_or(0)
    }

    fn site_count(&self, rid: RoutineId, site: u32) -> u64 {
        self.site_counts[self.slot(rid)]
            .get(&site)
            .copied()
            .unwrap_or(0)
    }

    fn body(&mut self, rid: RoutineId) -> Result<&RoutineBody, NaimError> {
        let pool = self.pool[self.slot_of[&rid]];
        Ok(self.loader.get(pool)?.routine())
    }

    fn body_mut(&mut self, rid: RoutineId) -> Result<&mut RoutineBody, NaimError> {
        let pool = self.pool[self.slot_of[&rid]];
        Ok(self.loader.get_mut(pool)?.routine_mut())
    }

    fn unload(&mut self, rid: RoutineId) -> Result<(), NaimError> {
        self.loader.unload(self.pool[self.slot_of[&rid]])
    }

    /// Rebuilds the cluster-local call graph (derived-data discipline):
    /// every member body is scanned once and unloaded. Edges to
    /// non-member callees are kept — they are what the inline core
    /// rejects as `cross_cluster`.
    fn local_graph(&mut self) -> Result<Vec<CallEdge>, NaimError> {
        let mut edges = Vec::new();
        for slot in 0..self.members.len() {
            let rid = self.members[slot];
            let body = self.body(rid)?;
            let mut local: Vec<(CallSiteId, RoutineId)> = Vec::new();
            for block in &body.blocks {
                for instr in &block.instrs {
                    if let Instr::Call { callee, site, .. } = instr {
                        local.push((*site, callee.id()));
                    }
                }
            }
            local.sort_by_key(|&(s, _)| s);
            for (site, callee) in local {
                edges.push(CallEdge {
                    caller: rid,
                    site,
                    callee,
                    count: self.site_count(rid, site.0),
                });
            }
            self.unload(rid)?;
        }
        self.loader.account(
            MemClass::Derived,
            (edges.capacity() * std::mem::size_of::<CallEdge>()) as isize,
        );
        Ok(edges)
    }

    fn inline_event(
        &self,
        caller: RoutineId,
        callee: RoutineId,
        site: CallSiteId,
        accepted: bool,
        reason: &'static str,
        count: u64,
    ) -> TraceEvent {
        let p = self.program;
        TraceEvent::Inline {
            caller: p.name(p.routine(caller).name).to_owned(),
            callee: p.name(p.routine(callee).name).to_owned(),
            site: site.0,
            accepted,
            reason,
            count,
        }
    }
}

struct Candidate {
    caller: RoutineId,
    site: CallSiteId,
    callee: RoutineId,
    count: u64,
    /// Sort key for cache-friendly scheduling.
    module_pair: (u32, u32),
    /// Which heuristic qualified this site (`"small"` or `"hot"`).
    why: &'static str,
}

/// The inlining core, over one cluster. Identical heuristics and
/// scheduling to the historical whole-program pass, with one addition:
/// a candidate whose callee lives in another cluster is rejected with
/// the `cross_cluster` reason (such sites only exist when the coupling
/// predicate over-approximated — see [`plan_clusters`]).
fn inline_core(
    cx: &mut ClusterCx,
    options: &InlineOptions,
    op_budget: Option<u64>,
) -> Result<InlineStats, NaimError> {
    let mut stats = InlineStats::default();
    let mut ops_done = 0u64;
    let tel = cx.tel.clone();

    for _pass in 0..options.max_passes {
        let graph = cx.local_graph()?;
        let mut candidates: Vec<Candidate> = Vec::new();
        for e in &graph {
            if e.caller == e.callee {
                continue; // no direct self-inlining
            }
            if let Some(targets) = &options.targets {
                if !targets.contains(&e.caller) {
                    continue;
                }
            }
            stats.considered += 1;
            let count = e.count;
            if !cx.is_local(e.callee) {
                if tel.is_enabled() {
                    tel.emit(cx.inline_event(
                        e.caller,
                        e.callee,
                        e.site,
                        false,
                        "cross_cluster",
                        count,
                    ));
                }
                continue;
            }
            let callee_il = cx.il(e.callee);
            let small = callee_il <= options.small_callee_il;
            let callee_entries = cx.entry_count(e.callee);
            let dominant = callee_entries == 0
                || count as f64 >= options.hot_site_dominance * callee_entries as f64;
            let hot = count >= options.hot_site_min_count
                && callee_il <= options.hot_callee_il
                && dominant;
            if small || hot {
                let cm = cx.program.routine(e.callee).module.0;
                let rm = cx.program.routine(e.caller).module.0;
                candidates.push(Candidate {
                    caller: e.caller,
                    site: e.site,
                    callee: e.callee,
                    count,
                    module_pair: (cm, rm),
                    why: if small { "small" } else { "hot" },
                });
            } else if tel.is_enabled() {
                let reason = if count < options.hot_site_min_count {
                    "cold"
                } else if callee_il > options.hot_callee_il {
                    "too_large"
                } else {
                    "not_dominant"
                };
                tel.emit(cx.inline_event(e.caller, e.callee, e.site, false, reason, count));
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Cache-friendly deterministic schedule: same (callee module,
        // caller module) pairs adjacent; hotter sites first within a
        // pair.
        candidates.sort_by(|a, b| {
            a.module_pair
                .cmp(&b.module_pair)
                .then(b.count.cmp(&a.count))
                .then(a.caller.cmp(&b.caller))
                .then(a.site.cmp(&b.site))
        });

        let mut did_any = false;
        for c in candidates {
            if let Some(limit) = op_budget {
                if ops_done >= limit {
                    stats.hit_op_limit = true;
                    cx.loader.unload_all()?;
                    return Ok(stats);
                }
            }
            let caller_il = cx.il(c.caller);
            let callee_il = cx.il(c.callee);
            if caller_il.saturating_add(callee_il) > options.caller_growth_cap {
                stats.capped += 1;
                if tel.is_enabled() {
                    tel.emit(cx.inline_event(
                        c.caller,
                        c.callee,
                        c.site,
                        false,
                        "growth_cap",
                        c.count,
                    ));
                }
                continue;
            }
            // Clone the callee body (it is only read), then mutate the
            // caller in place.
            let callee_body = cx.body(c.callee)?.clone();
            let callee_entry = cx.entry_count(c.callee);
            let callee_slot = cx.slot(c.callee);
            let callee_counts: Option<Vec<u64>> = cx.counts[callee_slot].clone();
            let callee_sites: Vec<(u32, u64)> = cx.site_counts[callee_slot]
                .iter()
                .map(|(&s, &n)| (s, n))
                .collect();

            let caller_body = cx.body_mut(c.caller)?;
            let Some(info) = splice_call(caller_body, c.site, &callee_body) else {
                if tel.is_enabled() {
                    tel.emit(cx.inline_event(
                        c.caller,
                        c.callee,
                        c.site,
                        false,
                        "site_gone",
                        c.count,
                    ));
                }
                continue;
            };
            let new_il = caller_body.instr_count() as u32;
            did_any = true;
            ops_done += 1;
            stats.inlines += 1;
            if tel.is_enabled() {
                tel.emit(cx.inline_event(c.caller, c.callee, c.site, true, c.why, c.count));
            }

            // Maintain profile counts through the transformation.
            let scale = if callee_entry == 0 {
                0.0
            } else {
                c.count as f64 / callee_entry as f64
            };
            let caller_slot = cx.slot(c.caller);
            if let Some(counts) = cx.counts[caller_slot].as_mut() {
                let call_block_count = counts.get(info.call_block.index()).copied().unwrap_or(0);
                // Continuation executes as often as the original block.
                counts.resize(info.cont_block.index(), 0);
                counts.push(call_block_count);
                for i in 0..info.callee_blocks {
                    let c_i = callee_counts
                        .as_ref()
                        .and_then(|v| v.get(i as usize).copied())
                        .unwrap_or(callee_entry);
                    counts.push((c_i as f64 * scale) as u64);
                }
                debug_assert_eq!(
                    counts.len(),
                    (info.callee_base + info.callee_blocks) as usize
                );
            }
            cx.site_counts[caller_slot].remove(&c.site.0);
            for (old, new) in &info.site_map {
                let old_count = callee_sites
                    .iter()
                    .find(|&&(s, _)| s == old.0)
                    .map_or(0, |&(_, n)| n);
                cx.site_counts[caller_slot].insert(new.0, (old_count as f64 * scale) as u64);
            }
            cx.il_size[caller_slot] = new_il;
            cx.unload(c.caller)?;
            cx.unload(c.callee)?;
        }
        cx.loader.unload_all()?;
        if !did_any {
            break;
        }
    }
    Ok(stats)
}

/// The cloning core, over one cluster. Non-local callees are skipped
/// silently (the historical pass emitted no rejection events either);
/// clones are recorded as [`PendingClone`]s under provisional ids and
/// materialized at merge time.
fn clone_core(cx: &mut ClusterCx, options: &CloneOptions) -> Result<CloneStats, NaimError> {
    let mut stats = CloneStats::default();
    let graph = cx.local_graph()?;
    // (callee, const signature) -> provisional clone id.
    let mut clone_cache: BTreeMap<(RoutineId, String), RoutineId> = BTreeMap::new();

    for e in graph {
        if stats.clones >= u64::from(options.max_clones) {
            break;
        }
        if e.caller == e.callee || e.count < options.min_count {
            continue;
        }
        if let Some(targets) = &options.targets {
            if !targets.contains(&e.caller) {
                continue;
            }
        }
        if !cx.is_local(e.callee) {
            continue; // cross-cluster callees are never cloned
        }
        if cx.il(e.callee) <= options.min_callee_il {
            continue; // inlining territory
        }
        let callee_meta = cx.program.routine(e.callee);
        let callee_name = cx.program.name(callee_meta.name);
        if callee_name.contains("$clone") {
            continue; // already specialized; nothing more to gain
        }
        let caller_body = cx.body(e.caller)?;
        let Some((_, sig)) = site_const_args(caller_body, e.site.0) else {
            continue;
        };
        if sig.iter().all(Option::is_none) {
            continue;
        }
        let key = (e.callee, const_sig_key(&sig));
        let clone_id = match clone_cache.get(&key) {
            Some(&id) => id,
            None => {
                let callee_body = cx.body(e.callee)?.clone();
                let specialized = specialize(&callee_body, &sig);
                let scale = {
                    let entries = cx.entry_count(e.callee);
                    if entries == 0 {
                        0.0
                    } else {
                        e.count as f64 / entries as f64
                    }
                };
                let callee_slot = cx.slot(e.callee);
                let counts = cx.counts[callee_slot]
                    .as_ref()
                    .map(|c| c.iter().map(|&x| (x as f64 * scale) as u64).collect());
                let sites: BTreeMap<u32, u64> = cx.site_counts[callee_slot]
                    .iter()
                    .map(|(&s, &n)| (s, (n as f64 * scale) as u64))
                    .collect();
                let name = format!("{callee_name}$clone{}", cx.pending.len());
                let pid = RoutineId::from_index(cx.id_space + cx.pending.len());
                cx.pending.push(PendingClone {
                    name: name.clone(),
                    module: callee_meta.module,
                    sig: callee_meta.sig.clone(),
                    source_lines: callee_meta.source_lines,
                    il_size: specialized.instr_count() as u32,
                    body: specialized,
                    counts,
                    site_counts: sites,
                });
                clone_cache.insert(key, pid);
                stats.clones += 1;
                if cx.tel.is_enabled() {
                    cx.tel.emit(TraceEvent::CloneRoutine {
                        callee: callee_name.to_owned(),
                        clone: name,
                        count: e.count,
                    });
                }
                pid
            }
        };
        // Retarget the site to the provisional id (fixed up at merge).
        let site = e.site.0;
        let caller_body = cx.body_mut(e.caller)?;
        'outer: for block in &mut caller_body.blocks {
            for instr in &mut block.instrs {
                if let Instr::Call {
                    site: s, callee, ..
                } = instr
                {
                    if s.0 == site {
                        *callee = cmo_ir::CalleeRef::Id(clone_id);
                        break 'outer;
                    }
                }
            }
        }
        cx.unload(e.caller)?;
        stats.retargeted += 1;
    }
    cx.loader.unload_all()?;
    Ok(stats)
}

/// Optimizes one cluster in isolation: member bodies move into a
/// private NAIM loader (same thresholds, disjoint pool-id namespace),
/// decisions are traced into a private sink tagged with the cluster's
/// *virtual* worker id (`index + 1`, so the trace is identical at every
/// `-j`), and the op budget — if any — caps this cluster's inline
/// operations. Pure with respect to the session: safe to call from
/// worker threads with a shared `&Program`.
///
/// # Errors
///
/// Propagates loader failures (a per-cluster loader enforces the same
/// hard memory limit as the main session).
#[allow(clippy::too_many_arguments)] // mirrors the sequential pipeline's knobs one-for-one
pub fn run_cluster(
    program: &Program,
    plan: &ClusterPlan,
    index: usize,
    config: &NaimConfig,
    inline: Option<&InlineOptions>,
    clone: Option<&CloneOptions>,
    op_budget: Option<u64>,
    telemetry: &Telemetry,
) -> Result<ClusterOutcome, NaimError> {
    let input = &plan.inputs[index];
    debug_assert_eq!(input.index, index);
    let tel = if telemetry.is_enabled() {
        Telemetry::enabled().for_worker(index as u32 + 1)
    } else {
        Telemetry::disabled()
    };
    let mut loader: Loader<Transitory> = Loader::with_ids(
        config.clone(),
        CLUSTER_POOL_BASE + index as u32,
        plan.inputs.len() as u32,
    );
    loader.set_telemetry(tel.clone());
    let mut pool = Vec::with_capacity(input.members.len());
    for body in &input.bodies {
        let p = loader.insert(Transitory::Routine(body.clone()), PoolKind::Ir);
        loader.unload(p)?;
        pool.push(p);
    }
    let derived: usize = input
        .counts
        .iter()
        .map(|c| c.as_ref().map_or(0, |v| v.len() * 8 + 24))
        .sum();
    loader.account(MemClass::Derived, derived as isize);
    loader.enforce()?;

    let mut cx = ClusterCx {
        program,
        members: input.members.clone(),
        slot_of: input
            .members
            .iter()
            .enumerate()
            .map(|(slot, &rid)| (rid, slot))
            .collect(),
        loader,
        pool,
        counts: input.counts.clone(),
        site_counts: input.site_counts.clone(),
        il_size: input.il_size.clone(),
        id_space: plan.id_space,
        pending: Vec::new(),
        tel: tel.clone(),
    };

    let inline_stats = match inline {
        Some(options) => inline_core(&mut cx, options, op_budget)?,
        None => InlineStats::default(),
    };
    // The same simulated-work lumps the driver historically charged;
    // charging them locally keeps the absorbed work clock — and so
    // every re-stamped trace record — identical at any -j.
    tel.work(inline_stats.inlines * 200 + inline_stats.considered);
    let clone_stats = match clone {
        Some(options) => clone_core(&mut cx, options)?,
        None => CloneStats::default(),
    };
    tel.work(clone_stats.clones * 150);

    let mut bodies = Vec::with_capacity(cx.members.len());
    for slot in 0..cx.members.len() {
        let rid = cx.members[slot];
        bodies.push(cx.body(rid)?.clone());
    }
    cx.loader.unload_all()?;
    let loader_stats = cx.loader.stats();
    let peak = cx.loader.memory();
    let (records, work) = tel.drain_records();
    Ok(ClusterOutcome {
        members: cx.members,
        bodies,
        counts: cx.counts,
        site_counts: cx.site_counts,
        il_size: cx.il_size,
        pending: cx.pending,
        inline_stats,
        clone_stats,
        loader_stats,
        peak,
        records,
        work,
    })
}

/// Runs every cluster sequentially, threading the inline op budget
/// from one cluster to the next — the path the driver takes when an
/// operation limit is set (§6.3 bisection must see one global
/// sequential counter) and at `-j1`.
///
/// # Errors
///
/// Propagates the first cluster failure.
pub fn run_clusters_seq(
    program: &Program,
    plan: &ClusterPlan,
    config: &NaimConfig,
    inline: Option<&InlineOptions>,
    clone: Option<&CloneOptions>,
    telemetry: &Telemetry,
) -> Result<Vec<ClusterOutcome>, NaimError> {
    let mut remaining = inline.and_then(|o| o.op_limit);
    let mut outcomes = Vec::with_capacity(plan.inputs.len());
    for index in 0..plan.inputs.len() {
        let outcome = run_cluster(
            program, plan, index, config, inline, clone, remaining, telemetry,
        )?;
        if let Some(r) = remaining.as_mut() {
            *r = r.saturating_sub(outcome.inline_stats.inlines);
        }
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// Folds cluster outcomes back into the session in ascending cluster
/// order: transformed bodies, counts and il sizes are written back,
/// pending clones are registered (remapping their provisional callee
/// ids — in member bodies *and* in the clone bodies themselves, which
/// may embed retargeted sites), loader activity is absorbed as a
/// concurrent peak over the at-split snapshot, and trace records are
/// re-stamped onto the main work clock. Returns the summed stats.
///
/// # Errors
///
/// Propagates loader failures.
pub fn merge_outcomes(
    session: &mut HloSession,
    plan: &ClusterPlan,
    outcomes: Vec<ClusterOutcome>,
) -> Result<(InlineStats, CloneStats), NaimError> {
    let id_space = plan.id_space;
    let mut inline_total = InlineStats::default();
    let mut clone_total = CloneStats::default();
    for outcome in outcomes {
        let base = session.program.routines().len();
        let remap = |body: &mut RoutineBody| {
            for block in &mut body.blocks {
                for instr in &mut block.instrs {
                    if let Instr::Call {
                        callee: cmo_ir::CalleeRef::Id(p),
                        ..
                    } = instr
                    {
                        if p.index() >= id_space {
                            *p = RoutineId::from_index(base + (p.index() - id_space));
                        }
                    }
                }
            }
        };
        let ClusterOutcome {
            members,
            bodies,
            counts,
            site_counts,
            il_size,
            pending,
            inline_stats,
            clone_stats,
            loader_stats,
            peak,
            records,
            work,
        } = outcome;
        let mut bodies = bodies.into_iter();
        let mut counts = counts.into_iter();
        let mut site_counts = site_counts.into_iter();
        for (slot, &rid) in members.iter().enumerate() {
            let mut body = bodies.next().expect("one body per member");
            remap(&mut body);
            *session.body_mut(rid)? = body;
            session.set_counts(
                rid,
                counts.next().expect("counts per member"),
                site_counts.next().expect("site counts per member"),
            );
            session.program.routine_mut(rid).il_size = il_size[slot];
            session.unload(rid)?;
        }
        for (q, p) in pending.into_iter().enumerate() {
            let mut body = p.body;
            remap(&mut body);
            let name_sym = session.program.interner_mut().intern(&p.name);
            let meta = RoutineMeta {
                name: name_sym,
                module: p.module,
                sig: p.sig,
                linkage: Linkage::Internal,
                source_lines: p.source_lines,
                il_size: p.il_size,
            };
            let rid = session.add_cloned_routine(meta, body, p.counts, p.site_counts)?;
            debug_assert_eq!(rid.index(), base + q);
        }
        inline_total.inlines += inline_stats.inlines;
        inline_total.considered += inline_stats.considered;
        inline_total.capped += inline_stats.capped;
        inline_total.hit_op_limit |= inline_stats.hit_op_limit;
        clone_total.clones += clone_stats.clones;
        clone_total.retargeted += clone_stats.retargeted;
        session.absorb_cluster_loader(&plan.at_split, &loader_stats, &peak);
        session.telemetry().clone().absorb_records(records, work);
    }
    session.unload_all()?;
    session.stats.inlines += inline_total.inlines;
    session.stats.sites_considered += inline_total.considered;
    session.stats.clones += clone_total.clones;
    Ok((inline_total, clone_total))
}
