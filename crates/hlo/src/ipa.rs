//! Interprocedural analysis and whole-program global-variable
//! optimization.
//!
//! "Information about global or module private variable usage can only
//! be determined if all routines that can access a variable are
//! examined, not just the performance-critical ones" (§5). HLO
//! therefore reads in *all* code once to collect [`GlobalFacts`], even
//! under selectivity; only the subsequent transformations are limited
//! to selected routines.
//!
//! These whole-program facts are also what stands in for code the
//! cluster-partitioned inliner cannot see: a cross-cluster callee is
//! never an inline or clone candidate (see [`crate::cluster`]), so its
//! effect on the caller's cluster is summarized entirely by the facts
//! folded here before the partition is taken.

use crate::callgraph::CallGraph;
use crate::session::HloSession;
use cmo_ir::{Const, GlobalId, GlobalRef, Instr, MemBase, RoutineId};
use cmo_naim::NaimError;

/// Whole-program read/write facts about global variables.
#[derive(Debug, Clone, Default)]
pub struct GlobalFacts {
    /// `read[g]`: some routine loads `g`.
    pub read: Vec<bool>,
    /// `written[g]`: some routine stores `g`.
    pub written: Vec<bool>,
}

fn global_of_base(base: &MemBase) -> Option<GlobalId> {
    match base {
        MemBase::Global(GlobalRef::Id(g)) => Some(*g),
        _ => None,
    }
}

impl GlobalFacts {
    /// Scans every routine once (unloading after), recording which
    /// globals are read and written anywhere in the program.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn build(session: &mut HloSession) -> Result<Self, NaimError> {
        let n_globals = session.program.globals().len();
        let mut facts = GlobalFacts {
            read: vec![false; n_globals],
            written: vec![false; n_globals],
        };
        for i in 0..session.n_routines() {
            let rid = RoutineId::from_index(i);
            let body = session.body(rid)?;
            for block in &body.blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::LoadGlobal { global, .. } => {
                            facts.read[global.id().index()] = true;
                        }
                        Instr::StoreGlobal { global, .. } => {
                            facts.written[global.id().index()] = true;
                        }
                        Instr::LoadElem { base, .. } => {
                            if let Some(g) = global_of_base(base) {
                                facts.read[g.index()] = true;
                            }
                        }
                        Instr::StoreElem { base, .. } => {
                            if let Some(g) = global_of_base(base) {
                                facts.written[g.index()] = true;
                            }
                        }
                        _ => {}
                    }
                }
            }
            session.unload(rid)?;
            // One work unit per routine scanned: the deterministic
            // stand-in for analysis time on the telemetry clock.
            session.telemetry().work(1);
        }
        session.account_derived((n_globals * 2) as isize);
        Ok(facts)
    }
}

/// Interprocedural constant propagation of globals plus dead-store
/// elimination:
///
/// * a scalar global never written anywhere keeps its initial value
///   forever, so every load of it folds to that constant;
/// * a global never read anywhere is dead, so every store to it is
///   removed (the stored value's computation becomes dead code that
///   LLO's DCE cleans up).
///
/// Only the routines in `targets` are transformed (fine-grained
/// selectivity); the facts themselves came from all routines.
///
/// # Errors
///
/// Propagates loader failures.
pub fn fold_globals(
    session: &mut HloSession,
    facts: &GlobalFacts,
    targets: &[RoutineId],
) -> Result<(), NaimError> {
    // Initial values of fold-eligible scalar globals.
    let n_globals = session.program.globals().len();
    let mut init_const: Vec<Option<Const>> = vec![None; n_globals];
    #[allow(clippy::needless_range_loop)]
    for g in 0..n_globals {
        let meta = session.program.global(GlobalId::from_index(g));
        if facts.written[g] || meta.ty.is_array() {
            continue;
        }
        let (module, slot, scalar) = (meta.module, meta.slot as usize, meta.ty.scalar);
        let init = session.symtab(module)?.globals[slot].init.clone();
        init_const[g] = Some(match init {
            cmo_ir::GlobalInit::Zero => match scalar {
                cmo_ir::Ty::I64 => Const::I(0),
                cmo_ir::Ty::F64 => Const::F(0.0),
            },
            cmo_ir::GlobalInit::Scalar(c) => c,
            // Array initializers cannot appear on scalars.
            _ => continue,
        });
    }

    let mut folded = 0u64;
    let mut removed = 0u64;
    for &rid in targets {
        let body = session.body_mut(rid)?;
        for block in &mut body.blocks {
            for instr in &mut block.instrs {
                if let Instr::LoadGlobal { dst, global } = instr {
                    if let Some(c) = init_const[global.id().index()] {
                        *instr = Instr::Const {
                            dst: *dst,
                            value: c,
                        };
                        folded += 1;
                    }
                }
            }
            let before = block.instrs.len();
            block.instrs.retain(|i| match i {
                Instr::StoreGlobal { global, .. } => facts.read[global.id().index()],
                Instr::StoreElem { base, .. } => match global_of_base(base) {
                    Some(g) => facts.read[g.index()],
                    None => true,
                },
                _ => true,
            });
            removed += (before - block.instrs.len()) as u64;
        }
        session.unload(rid)?;
        session.telemetry().work(1);
    }
    session.stats.globals_folded += folded;
    session.stats.dead_stores_removed += removed;
    Ok(())
}

/// Transitive mod/ref summaries: which globals each routine may read
/// or write, directly or through calls. Bit-matrix representation,
/// fixed-point over the call graph.
#[derive(Debug, Clone)]
pub struct ModRef {
    n_globals: usize,
    words: usize,
    reads: Vec<u64>,
    writes: Vec<u64>,
}

impl ModRef {
    /// Builds summaries for every routine.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn build(session: &mut HloSession, graph: &CallGraph) -> Result<Self, NaimError> {
        let n_globals = session.program.globals().len();
        let n = session.n_routines();
        let words = n_globals.div_ceil(64).max(1);
        let mut mr = ModRef {
            n_globals,
            words,
            reads: vec![0; n * words],
            writes: vec![0; n * words],
        };
        // Direct facts.
        for i in 0..n {
            let rid = RoutineId::from_index(i);
            let body = session.body(rid)?;
            for block in &body.blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::LoadGlobal { global, .. } => mr.set_read(rid, global.id()),
                        Instr::StoreGlobal { global, .. } => mr.set_write(rid, global.id()),
                        Instr::LoadElem { base, .. } => {
                            if let Some(g) = global_of_base(base) {
                                mr.set_read(rid, g);
                            }
                        }
                        Instr::StoreElem { base, .. } => {
                            if let Some(g) = global_of_base(base) {
                                mr.set_write(rid, g);
                            }
                        }
                        _ => {}
                    }
                }
            }
            session.unload(rid)?;
        }
        // Transitive closure over calls.
        let mut changed = true;
        while changed {
            changed = false;
            for e in &graph.edges {
                let (cr, cw) = (e.caller.index(), e.callee.index());
                for w in 0..words {
                    let add_r = mr.reads[cw * words + w] & !mr.reads[cr * words + w];
                    let add_w = mr.writes[cw * words + w] & !mr.writes[cr * words + w];
                    if add_r != 0 {
                        mr.reads[cr * words + w] |= add_r;
                        changed = true;
                    }
                    if add_w != 0 {
                        mr.writes[cr * words + w] |= add_w;
                        changed = true;
                    }
                }
            }
        }
        session.account_derived((mr.reads.len() * 16) as isize);
        Ok(mr)
    }

    fn set_read(&mut self, r: RoutineId, g: GlobalId) {
        self.reads[r.index() * self.words + g.index() / 64] |= 1 << (g.index() % 64);
    }

    fn set_write(&mut self, r: RoutineId, g: GlobalId) {
        self.writes[r.index() * self.words + g.index() / 64] |= 1 << (g.index() % 64);
    }

    /// May `r` (transitively) read `g`?
    #[must_use]
    pub fn reads(&self, r: RoutineId, g: GlobalId) -> bool {
        debug_assert!(g.index() < self.n_globals);
        self.reads[r.index() * self.words + g.index() / 64] & (1 << (g.index() % 64)) != 0
    }

    /// May `r` (transitively) write `g`?
    #[must_use]
    pub fn writes(&self, r: RoutineId, g: GlobalId) -> bool {
        debug_assert!(g.index() < self.n_globals);
        self.writes[r.index() * self.words + g.index() / 64] & (1 << (g.index() % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;
    use cmo_naim::NaimConfig;

    fn session(srcs: &[(&str, &str)]) -> HloSession {
        let objs = srcs
            .iter()
            .map(|(name, src)| compile_module(name, src).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        HloSession::new(unit, NaimConfig::default(), None).unwrap()
    }

    const GLOBALS_SRC: &str = r#"
        global ro_config: int = 7;
        global write_only_log: int = 0;
        global counter: int = 0;

        fn main() -> int {
            write_only_log = input();
            counter = counter + ro_config;
            return counter;
        }
    "#;

    #[test]
    fn facts_distinguish_read_write() {
        let mut s = session(&[("m", GLOBALS_SRC)]);
        let facts = GlobalFacts::build(&mut s).unwrap();
        let find = |name: &str| {
            s.program
                .globals()
                .iter()
                .position(|g| s.program.name(g.name) == name)
                .unwrap()
        };
        let ro = find("ro_config");
        let wo = find("write_only_log");
        let rw = find("counter");
        assert!(facts.read[ro] && !facts.written[ro]);
        assert!(!facts.read[wo] && facts.written[wo]);
        assert!(facts.read[rw] && facts.written[rw]);
    }

    #[test]
    fn never_written_global_folds_and_dead_store_goes() {
        let mut s = session(&[("m", GLOBALS_SRC)]);
        let facts = GlobalFacts::build(&mut s).unwrap();
        let main = s.program.find_routine("main").unwrap();
        fold_globals(&mut s, &facts, &[main]).unwrap();
        assert_eq!(s.stats().globals_folded, 1);
        assert_eq!(s.stats().dead_stores_removed, 1);
        let body = s.body(main).unwrap();
        // ro_config load folded to const 7; write_only_log store gone.
        let has_const7 = body.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i,
                Instr::Const {
                    value: Const::I(7),
                    ..
                }
            )
        });
        assert!(has_const7);
        let stores: usize = body
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::StoreGlobal { .. }))
            .count();
        assert_eq!(stores, 1, "only the counter store remains");
    }

    #[test]
    fn modref_is_transitive() {
        let mut s = session(&[
            (
                "a",
                "extern fn touch();\nglobal g: int = 0;\nfn main() -> int { touch(); return 0; }",
            ),
            ("b", "extern global g: int;\nfn touch() { g = g + 1; }"),
        ]);
        let cg = CallGraph::build(&mut s).unwrap();
        let mr = ModRef::build(&mut s, &cg).unwrap();
        let main = s.program.find_routine("main").unwrap();
        let touch = s.program.find_routine("touch").unwrap();
        let g = GlobalId::from_index(0);
        assert!(mr.writes(touch, g));
        assert!(mr.reads(touch, g));
        assert!(mr.writes(main, g), "main writes g through touch");
    }

    #[test]
    fn selective_targets_leave_others_untouched() {
        let mut s = session(&[(
            "m",
            r#"
            global ro: int = 3;
            fn hot() -> int { return ro; }
            fn cold() -> int { return ro; }
            fn main() -> int { return hot() + cold(); }
            "#,
        )]);
        let facts = GlobalFacts::build(&mut s).unwrap();
        let hot = s.program.find_routine("hot").unwrap();
        let cold = s.program.find_routine("cold").unwrap();
        fold_globals(&mut s, &facts, &[hot]).unwrap();
        let hot_has_load = s
            .body(hot)
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::LoadGlobal { .. }));
        let cold_has_load = s
            .body(cold)
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::LoadGlobal { .. }));
        assert!(!hot_has_load, "hot was folded");
        assert!(cold_has_load, "cold was not selected");
    }
}
