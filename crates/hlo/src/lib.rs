#![warn(missing_docs)]
//! The high-level optimizer (HLO).
//!
//! HLO is where the paper's cross-module optimization happens (§3):
//! the linker hands it multiple modules' worth of IL in a single
//! compilation, and it performs interprocedural analysis and
//! transformation across all of them — "inlining, cloning, dead code
//! elimination, constant propagation, memory disambiguation" — with
//! call profiles improving the inlining heuristics when PBO is on.
//!
//! Every routine body and module symbol table lives in a NAIM pool
//! behind the [`cmo_naim::Loader`]; HLO loads what it needs for the
//! current task and requests unloads when done (§4.2). Analysis
//! results (the call graph annotations, mod/ref summaries, maintained
//! block counts) are *derived* data: recomputed from scratch, never
//! kept incrementally up to date, freely discarded (§4.1).
//!
//! The inliner honours *operation limits* (§6.3): a cap on the number
//! of inline operations performed, binary-searchable by the automatic
//! bug-isolation driver in the `cmo` crate.

//! Since the cluster-partitioned refactor the inline/clone pipeline is
//! WHOPR-shaped: [`plan_clusters`] condenses the call graph into
//! independent clusters, [`run_cluster`] optimizes one cluster against
//! a private loader (safe to run from worker threads), and
//! [`merge_outcomes`] folds results back in deterministic cluster
//! order. [`inline_pass`] / [`clone_pass`] are sequential wrappers
//! over the same machinery.

mod callgraph;
mod clone;
pub mod cluster;
mod inline;
mod ipa;
mod session;

pub use callgraph::{CallEdge, CallGraph, Cluster, Partition, PartitionStats};
pub use clone::{clone_pass, CloneOptions, CloneStats};
pub use cluster::{
    merge_outcomes, plan_clusters, run_cluster, run_clusters_seq, ClusterInput, ClusterOutcome,
    ClusterPlan,
};
pub use inline::{inline_pass, InlineOptions, InlineStats};
pub use ipa::{fold_globals, GlobalFacts, ModRef};
pub use session::{HloSession, HloStats};
