#![warn(missing_docs)]
//! The high-level optimizer (HLO).
//!
//! HLO is where the paper's cross-module optimization happens (§3):
//! the linker hands it multiple modules' worth of IL in a single
//! compilation, and it performs interprocedural analysis and
//! transformation across all of them — "inlining, cloning, dead code
//! elimination, constant propagation, memory disambiguation" — with
//! call profiles improving the inlining heuristics when PBO is on.
//!
//! Every routine body and module symbol table lives in a NAIM pool
//! behind the [`cmo_naim::Loader`]; HLO loads what it needs for the
//! current task and requests unloads when done (§4.2). Analysis
//! results (the call graph annotations, mod/ref summaries, maintained
//! block counts) are *derived* data: recomputed from scratch, never
//! kept incrementally up to date, freely discarded (§4.1).
//!
//! The inliner honours *operation limits* (§6.3): a cap on the number
//! of inline operations performed, binary-searchable by the automatic
//! bug-isolation driver in the `cmo` crate.

mod callgraph;
mod clone;
mod inline;
mod ipa;
mod session;

pub use callgraph::{CallEdge, CallGraph};
pub use clone::{clone_pass, CloneOptions, CloneStats};
pub use inline::{inline_pass, InlineOptions, InlineStats};
pub use ipa::{fold_globals, GlobalFacts, ModRef};
pub use session::{HloSession, HloStats};
