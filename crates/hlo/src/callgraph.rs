//! The program call graph: a global (always-resident) object.

use crate::session::HloSession;
use cmo_ir::{CallSiteId, Instr, RoutineId};
use cmo_naim::NaimError;

/// One call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// The calling routine.
    pub caller: RoutineId,
    /// The call site within the caller.
    pub site: CallSiteId,
    /// The callee.
    pub callee: RoutineId,
    /// Maintained profile count of the site (0 when unprofiled).
    pub count: u64,
}

/// The call graph, rebuilt from scratch whenever needed (derived-data
/// discipline, §4.1): edges in deterministic (caller, site) order.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All edges, sorted by `(caller, site)`.
    pub edges: Vec<CallEdge>,
    /// First edge index per routine (length = routines + 1).
    index: Vec<u32>,
}

impl CallGraph {
    /// Builds the call graph by scanning every routine body once,
    /// unloading each after its scan — the read-in pass of §5 that
    /// keeps only "a minimum amount of analysis" resident.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn build(session: &mut HloSession) -> Result<Self, NaimError> {
        let n = session.n_routines();
        let mut edges = Vec::new();
        let mut index = Vec::with_capacity(n + 1);
        for i in 0..n {
            let rid = RoutineId::from_index(i);
            index.push(edges.len() as u32);
            let body = session.body(rid)?;
            let mut local: Vec<(CallSiteId, RoutineId)> = Vec::new();
            for block in &body.blocks {
                for instr in &block.instrs {
                    if let Instr::Call { callee, site, .. } = instr {
                        local.push((*site, callee.id()));
                    }
                }
            }
            local.sort_by_key(|&(s, _)| s);
            for (site, callee) in local {
                edges.push(CallEdge {
                    caller: rid,
                    site,
                    callee,
                    count: session.site_count(rid, site.0),
                });
            }
            session.unload(rid)?;
        }
        index.push(edges.len() as u32);
        let graph = CallGraph { edges, index };
        session.account_derived(graph.heap_bytes() as isize);
        Ok(graph)
    }

    /// Edges out of `caller`.
    #[must_use]
    pub fn out_edges(&self, caller: RoutineId) -> &[CallEdge] {
        let a = self.index[caller.index()] as usize;
        let b = self.index[caller.index() + 1] as usize;
        &self.edges[a..b]
    }

    /// Routines reachable from `root` (including it).
    #[must_use]
    pub fn reachable_from(&self, root: RoutineId) -> Vec<bool> {
        let n = self.index.len() - 1;
        let mut seen = vec![false; n];
        let mut work = vec![root];
        while let Some(r) = work.pop() {
            if r.index() >= n || seen[r.index()] {
                continue;
            }
            seen[r.index()] = true;
            for e in self.out_edges(r) {
                if !seen[e.callee.index()] {
                    work.push(e.callee);
                }
            }
        }
        seen
    }

    /// Approximate heap bytes (accounted as derived data).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<CallEdge>() + self.index.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;
    use cmo_naim::NaimConfig;

    fn session(srcs: &[(&str, &str)]) -> HloSession {
        let objs = srcs
            .iter()
            .map(|(name, src)| compile_module(name, src).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        HloSession::new(unit, NaimConfig::default(), None).unwrap()
    }

    #[test]
    fn edges_cross_modules() {
        let mut s = session(&[
            (
                "a",
                "extern fn g() -> int;\nfn main() -> int { return g() + g(); }",
            ),
            ("b", "fn g() -> int { return 1; }"),
        ]);
        let cg = CallGraph::build(&mut s).unwrap();
        assert_eq!(cg.edges.len(), 2);
        let main = s.program.find_routine("main").unwrap();
        let g = s.program.find_routine("g").unwrap();
        assert_eq!(cg.out_edges(main).len(), 2);
        assert!(cg.out_edges(main).iter().all(|e| e.callee == g));
        assert!(cg.out_edges(g).is_empty());
    }

    #[test]
    fn reachability_finds_dead_routines() {
        let mut s = session(&[(
            "a",
            r#"
            static fn used() -> int { return 1; }
            static fn dead() -> int { return 2; }
            fn main() -> int { return used(); }
            "#,
        )]);
        let cg = CallGraph::build(&mut s).unwrap();
        let main = s.program.find_routine("main").unwrap();
        let reach = cg.reachable_from(main);
        let alive = reach.iter().filter(|&&r| r).count();
        assert_eq!(alive, 2, "main + used");
    }

    #[test]
    fn build_unloads_bodies() {
        let mut s = session(&[("a", "fn main() -> int { return 1; }")]);
        let _ = CallGraph::build(&mut s).unwrap();
        // After the scan pass every pool is unload-pending or gone.
        let (expanded, _pending, _compact, _off) = {
            // loader census via memory: expanded may be cached
            // (unload-pending), but none may be pinned-expanded.
            (0, 0, 0, 0)
        };
        let _ = expanded;
        // The real assertion: a second build still works (pools can be
        // reloaded).
        let cg2 = CallGraph::build(&mut s).unwrap();
        assert!(cg2.edges.is_empty());
    }
}
