//! The program call graph: a global (always-resident) object.

use crate::session::HloSession;
use cmo_ir::{CallSiteId, Instr, RoutineId};
use cmo_naim::NaimError;

/// One call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// The calling routine.
    pub caller: RoutineId,
    /// The call site within the caller.
    pub site: CallSiteId,
    /// The callee.
    pub callee: RoutineId,
    /// Maintained profile count of the site (0 when unprofiled).
    pub count: u64,
}

/// The call graph, rebuilt from scratch whenever needed (derived-data
/// discipline, §4.1): edges in deterministic (caller, site) order.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All edges, sorted by `(caller, site)`.
    pub edges: Vec<CallEdge>,
    /// First edge index per routine (length = routines + 1).
    index: Vec<u32>,
}

impl CallGraph {
    /// Builds the call graph by scanning every routine body once,
    /// unloading each after its scan — the read-in pass of §5 that
    /// keeps only "a minimum amount of analysis" resident.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn build(session: &mut HloSession) -> Result<Self, NaimError> {
        let n = session.n_routines();
        let mut edges = Vec::new();
        let mut index = Vec::with_capacity(n + 1);
        for i in 0..n {
            let rid = RoutineId::from_index(i);
            index.push(edges.len() as u32);
            let body = session.body(rid)?;
            let mut local: Vec<(CallSiteId, RoutineId)> = Vec::new();
            for block in &body.blocks {
                for instr in &block.instrs {
                    if let Instr::Call { callee, site, .. } = instr {
                        local.push((*site, callee.id()));
                    }
                }
            }
            local.sort_by_key(|&(s, _)| s);
            for (site, callee) in local {
                edges.push(CallEdge {
                    caller: rid,
                    site,
                    callee,
                    count: session.site_count(rid, site.0),
                });
            }
            session.unload(rid)?;
        }
        index.push(edges.len() as u32);
        let graph = CallGraph { edges, index };
        session.account_derived(graph.heap_bytes() as isize);
        Ok(graph)
    }

    /// Edges out of `caller`.
    #[must_use]
    pub fn out_edges(&self, caller: RoutineId) -> &[CallEdge] {
        let a = self.index[caller.index()] as usize;
        let b = self.index[caller.index() + 1] as usize;
        &self.edges[a..b]
    }

    /// Routines reachable from `root` (including it).
    #[must_use]
    pub fn reachable_from(&self, root: RoutineId) -> Vec<bool> {
        let n = self.index.len() - 1;
        let mut seen = vec![false; n];
        let mut work = vec![root];
        while let Some(r) = work.pop() {
            if r.index() >= n || seen[r.index()] {
                continue;
            }
            seen[r.index()] = true;
            for e in self.out_edges(r) {
                if !seen[e.callee.index()] {
                    work.push(e.callee);
                }
            }
        }
        seen
    }

    /// Approximate heap bytes (accounted as derived data).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<CallEdge>() + self.index.capacity() * 4
    }

    /// Partitions the routines into independent optimization clusters
    /// (WHOPR-style LTO partitioning): condense strongly connected
    /// components, then greedily merge components joined by *coupled*
    /// edges — edges the caller-supplied predicate marks as potential
    /// inline or clone candidates — hottest first, capped at
    /// `max_cluster` routines per cluster.
    ///
    /// Invariants the rest of the pipeline relies on:
    ///
    /// - SCCs collapse into one cluster unconditionally (recursion
    ///   never straddles a cluster boundary), even past the size cap.
    /// - Coupled inter-component edges are merged in deterministic
    ///   hottest-first `(count desc, caller, site)` order, so the
    ///   partition is identical at every `-j` level.
    /// - Clusters are ordered by their smallest member index and each
    ///   cluster's members are sorted ascending, giving the driver a
    ///   stable fan-out and merge order.
    /// - Over-coupling is safe (it only shrinks parallelism); any
    ///   candidate the predicate missed is rejected at inline time
    ///   with the `cross_cluster` reason.
    #[must_use]
    pub fn partition(
        &self,
        n_routines: usize,
        max_cluster: usize,
        may_couple: impl Fn(&CallEdge) -> bool,
    ) -> Partition {
        let n = n_routines;
        let comp = self.sccs(n);
        let n_comps = comp.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut comp_size = vec![0u32; n_comps];
        for &c in &comp {
            comp_size[c as usize] += 1;
        }
        let mut uf = UnionFind::new(&comp_size);
        // Coupled inter-component edges, hottest first. Self edges can
        // never inline and SCC edges are already intra-component.
        let mut coupled: Vec<&CallEdge> = self
            .edges
            .iter()
            .filter(|e| {
                e.caller != e.callee
                    && e.callee.index() < n
                    && comp[e.caller.index()] != comp[e.callee.index()]
                    && may_couple(e)
            })
            .collect();
        coupled.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.caller.cmp(&b.caller))
                .then(a.site.cmp(&b.site))
        });
        for e in coupled {
            uf.union(comp[e.caller.index()], comp[e.callee.index()], max_cluster);
        }
        // Assemble clusters in min-member order (first routine whose
        // root is new opens the cluster, so iterating ascending gives
        // the order for free) with ascending members.
        let mut clusters: Vec<Cluster> = Vec::new();
        let mut cluster_of = vec![0u32; n];
        let mut comp_cluster = vec![u32::MAX; n_comps];
        for (i, &c) in comp.iter().enumerate() {
            let root = uf.find(c) as usize;
            if comp_cluster[root] == u32::MAX {
                comp_cluster[root] = clusters.len() as u32;
                clusters.push(Cluster::default());
            }
            let k = comp_cluster[root];
            cluster_of[i] = k;
            clusters[k as usize].members.push(RoutineId::from_index(i));
        }
        let mut cross_edges = 0u64;
        for e in &self.edges {
            if e.callee.index() >= n {
                cross_edges += 1;
            } else if cluster_of[e.caller.index()] == cluster_of[e.callee.index()] {
                clusters[cluster_of[e.caller.index()] as usize].edges += 1;
            } else {
                cross_edges += 1;
            }
        }
        Partition {
            clusters,
            cluster_of,
            cross_edges,
        }
    }

    /// Strongly connected components over routines `0..n` (iterative
    /// Tarjan; edges to out-of-range callees are ignored). Returns the
    /// component id of each routine.
    fn sccs(&self, n: usize) -> Vec<u32> {
        let mut comp = vec![0u32; n];
        let mut order = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_order = 0u32;
        let mut n_comps = 0u32;
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if order[root] != u32::MAX {
                continue;
            }
            frames.push((root, 0));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0;
                if order[v] == u32::MAX {
                    order[v] = next_order;
                    low[v] = next_order;
                    next_order += 1;
                    stack.push(v as u32);
                    on_stack[v] = true;
                }
                let out = self.out_edges(RoutineId::from_index(v));
                let mut descended = false;
                while frame.1 < out.len() {
                    let w = out[frame.1].callee.index();
                    frame.1 += 1;
                    if w >= n {
                        continue;
                    }
                    if order[w] == u32::MAX {
                        frames.push((w, 0));
                        descended = true;
                        break;
                    }
                    if on_stack[w] {
                        low[v] = low[v].min(order[w]);
                    }
                }
                if descended {
                    continue;
                }
                if low[v] == order[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack") as usize;
                        on_stack[w] = false;
                        comp[w] = n_comps;
                        if w == v {
                            break;
                        }
                    }
                    n_comps += 1;
                }
                frames.pop();
                if let Some(parent) = frames.last_mut() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
            }
        }
        comp
    }
}

/// One independent optimization cluster: a set of routines with no
/// coupled call edges leaving the set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cluster {
    /// Member routines, sorted ascending by index.
    pub members: Vec<RoutineId>,
    /// Call edges internal to the cluster.
    pub edges: u64,
}

/// A full partition of the program's routines into clusters.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Clusters ordered by smallest member index.
    pub clusters: Vec<Cluster>,
    /// Cluster index of each routine.
    pub cluster_of: Vec<u32>,
    /// Call edges that straddle a cluster boundary (or leave the
    /// routine range): never inline or clone candidates.
    pub cross_edges: u64,
}

impl Partition {
    /// Whether two routines landed in the same cluster. Out-of-range
    /// ids (e.g. provisional clone ids) are never local to anything.
    #[must_use]
    pub fn same_cluster(&self, a: RoutineId, b: RoutineId) -> bool {
        a.index() < self.cluster_of.len()
            && b.index() < self.cluster_of.len()
            && self.cluster_of[a.index()] == self.cluster_of[b.index()]
    }

    /// Summary counters for the compile report.
    #[must_use]
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            clusters: self.clusters.len() as u64,
            largest: self
                .clusters
                .iter()
                .map(|c| c.members.len() as u64)
                .max()
                .unwrap_or(0),
            cross_edges: self.cross_edges,
        }
    }
}

/// Partition summary counters, carried into the compile report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of clusters the call graph condensed into.
    pub clusters: u64,
    /// Routine count of the largest cluster.
    pub largest: u64,
    /// Call edges straddling a cluster boundary.
    pub cross_edges: u64,
}

/// Union-find over SCC components with a size-capped union: roots are
/// the component with the smaller current root id, which keeps merge
/// results independent of merge order ties.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(sizes: &[u32]) -> Self {
        UnionFind {
            parent: (0..sizes.len() as u32).collect(),
            size: sizes.to_vec(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let up = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = up;
            x = up;
        }
        x
    }

    /// Merges the sets of `a` and `b` unless the combined routine
    /// count would exceed `cap`.
    fn union(&mut self, a: u32, b: u32, cap: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let combined = self.size[ra as usize] + self.size[rb as usize];
        if combined as usize > cap {
            return;
        }
        let (keep, fold) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[fold as usize] = keep;
        self.size[keep as usize] = combined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;
    use cmo_naim::NaimConfig;

    fn session(srcs: &[(&str, &str)]) -> HloSession {
        let objs = srcs
            .iter()
            .map(|(name, src)| compile_module(name, src).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        HloSession::new(unit, NaimConfig::default(), None).unwrap()
    }

    #[test]
    fn edges_cross_modules() {
        let mut s = session(&[
            (
                "a",
                "extern fn g() -> int;\nfn main() -> int { return g() + g(); }",
            ),
            ("b", "fn g() -> int { return 1; }"),
        ]);
        let cg = CallGraph::build(&mut s).unwrap();
        assert_eq!(cg.edges.len(), 2);
        let main = s.program.find_routine("main").unwrap();
        let g = s.program.find_routine("g").unwrap();
        assert_eq!(cg.out_edges(main).len(), 2);
        assert!(cg.out_edges(main).iter().all(|e| e.callee == g));
        assert!(cg.out_edges(g).is_empty());
    }

    #[test]
    fn reachability_finds_dead_routines() {
        let mut s = session(&[(
            "a",
            r#"
            static fn used() -> int { return 1; }
            static fn dead() -> int { return 2; }
            fn main() -> int { return used(); }
            "#,
        )]);
        let cg = CallGraph::build(&mut s).unwrap();
        let main = s.program.find_routine("main").unwrap();
        let reach = cg.reachable_from(main);
        let alive = reach.iter().filter(|&&r| r).count();
        assert_eq!(alive, 2, "main + used");
    }

    /// Builds a graph directly from `(caller, site, callee, count)`
    /// tuples (sorted per caller), sidestepping the loader.
    fn graph(n: usize, edges: &[(usize, u32, usize, u64)]) -> CallGraph {
        let mut all: Vec<CallEdge> = edges
            .iter()
            .map(|&(caller, site, callee, count)| CallEdge {
                caller: RoutineId::from_index(caller),
                site: CallSiteId(site),
                callee: RoutineId::from_index(callee),
                count,
            })
            .collect();
        all.sort_by_key(|e| (e.caller, e.site));
        let mut index = Vec::with_capacity(n + 1);
        let mut at = 0;
        for i in 0..n {
            index.push(at as u32);
            while at < all.len() && all[at].caller.index() == i {
                at += 1;
            }
        }
        index.push(all.len() as u32);
        CallGraph { edges: all, index }
    }

    #[test]
    fn recursive_scc_collapses_into_one_cluster() {
        // main -> a -> b -> c -> a: the cycle must land in one cluster
        // even when nothing couples (and even past any size cap).
        let g = graph(4, &[(0, 0, 1, 5), (1, 0, 2, 5), (2, 0, 3, 5), (3, 0, 1, 5)]);
        let p = g.partition(4, 1, |_| false);
        assert_eq!(p.cluster_of[1], p.cluster_of[2]);
        assert_eq!(p.cluster_of[2], p.cluster_of[3]);
        assert_ne!(p.cluster_of[0], p.cluster_of[1], "main is uncoupled");
        assert_eq!(p.stats().clusters, 2);
        assert_eq!(p.stats().largest, 3);
        assert_eq!(p.cross_edges, 1, "main -> a straddles the boundary");
    }

    #[test]
    fn size_cap_splits_coupled_clusters_hottest_first() {
        // 0 calls 1 (hot) and 2 (cold); the cap of two admits only the
        // hottest coupling, and the cold edge becomes a cross edge.
        let g = graph(3, &[(0, 0, 1, 100), (0, 1, 2, 50)]);
        let p = g.partition(3, 2, |_| true);
        assert_eq!(p.cluster_of[0], p.cluster_of[1]);
        assert_ne!(p.cluster_of[0], p.cluster_of[2]);
        assert!(p.same_cluster(RoutineId::from_index(0), RoutineId::from_index(1)));
        assert!(!p.same_cluster(RoutineId::from_index(0), RoutineId::from_index(2)));
        assert_eq!(p.cross_edges, 1);
        assert_eq!(p.clusters[0].edges, 1);
    }

    #[test]
    fn singleton_and_dead_routines_form_their_own_clusters() {
        // Routine 1 is dead (no edges touch it); self-recursion on 2
        // stays internal. Every routine is its own cluster.
        let g = graph(3, &[(2, 0, 2, 9)]);
        let p = g.partition(3, 16, |_| true);
        assert_eq!(p.stats().clusters, 3);
        assert_eq!(p.stats().largest, 1);
        assert_eq!(p.cross_edges, 0, "self edges are never cross edges");
        assert_eq!(p.clusters[2].edges, 1);
        // Clusters are ordered by smallest member, members ascending.
        for (k, c) in p.clusters.iter().enumerate() {
            assert_eq!(c.members, vec![RoutineId::from_index(k)]);
        }
    }

    #[test]
    fn empty_program_partitions_to_nothing() {
        let g = graph(0, &[]);
        let p = g.partition(0, 16, |_| true);
        assert!(p.clusters.is_empty());
        assert_eq!(p.stats(), PartitionStats::default());
    }

    #[test]
    fn partition_is_deterministic_under_count_ties() {
        // Two equally hot couplings compete for the cap: the tie must
        // break on (caller, site), not discovery order.
        let g = graph(4, &[(0, 0, 2, 10), (1, 0, 2, 10), (3, 0, 2, 10)]);
        let p = g.partition(4, 2, |_| true);
        let q = g.partition(4, 2, |_| true);
        assert_eq!(p.cluster_of, q.cluster_of);
        // Caller 0 wins the tie for routine 2.
        assert_eq!(p.cluster_of[0], p.cluster_of[2]);
        assert_eq!(p.cross_edges, 2);
    }

    #[test]
    fn build_unloads_bodies() {
        let mut s = session(&[("a", "fn main() -> int { return 1; }")]);
        let _ = CallGraph::build(&mut s).unwrap();
        // After the scan pass every pool is unload-pending or gone.
        let (expanded, _pending, _compact, _off) = {
            // loader census via memory: expanded may be cached
            // (unload-pending), but none may be pinned-expanded.
            (0, 0, 0, 0)
        };
        let _ = expanded;
        // The real assertion: a second build still works (pools can be
        // reloaded).
        let cg2 = CallGraph::build(&mut s).unwrap();
        assert!(cg2.edges.is_empty());
    }
}
