//! Profile-guided cross-module inlining.
//!
//! "Though our framework supports interprocedural optimization, we
//! have found that its main benefit is in enabling profile-based
//! cross-module inlining" (§7). The inliner:
//!
//! * inlines calls irrespective of module boundaries (resolved IL has
//!   no module barriers left);
//! * with PBO, aggressively inlines *hot* call sites — sites with high
//!   profile counts — while letting only tiny callees in everywhere
//!   else;
//! * maintains block and call-site counts through the transformation
//!   (scaled by site frequency over callee entry frequency), so
//!   downstream layout and later inlining rounds keep working from
//!   correlated data;
//! * schedules its work sorted by (callee module, caller module) "so
//!   that cross-module inlines from the same pair of modules are
//!   processed one after another", exploiting the NAIM loader's cache
//!   (§4.3);
//! * honours an *operation limit* for automatic bug isolation (§6.3):
//!   every inline has a sequence number, and the limit cuts the pass
//!   off exactly there.

use crate::cluster::{merge_outcomes, plan_clusters, run_clusters_seq};
use crate::session::HloSession;
use cmo_ir::{Block, CallSiteId, Instr, Local, RoutineBody, RoutineId, Terminator, VReg};
use cmo_naim::NaimError;
use std::collections::BTreeSet;

/// Inliner heuristics and limits.
#[derive(Debug, Clone)]
pub struct InlineOptions {
    /// Callees at most this many IL instructions inline at every call
    /// site (the classic "tiny callee" rule).
    pub small_callee_il: u32,
    /// A site with at least this profile count is *hot*.
    pub hot_site_min_count: u64,
    /// Hot sites inline callees up to this many IL instructions.
    pub hot_callee_il: u32,
    /// A hot site must additionally account for at least this fraction
    /// of the callee's total entries. This is the duplication guard
    /// from the authors' aggressive-inlining heuristics \[1\]: a utility
    /// routine hot from *many* places stays shared (procedure
    /// clustering handles it), while a dominant caller absorbs its
    /// callee.
    pub hot_site_dominance: f64,
    /// A caller is not grown beyond this many IL instructions.
    pub caller_growth_cap: u32,
    /// Maximum inlining rounds (each round rebuilds the call graph and
    /// can expose new opportunities).
    pub max_passes: u32,
    /// Operation limit for bug isolation (§6.3): stop after this many
    /// inline operations, counted across passes.
    pub op_limit: Option<u64>,
    /// Fine-grained selectivity: only these callers are transformed.
    /// `None` means every routine (the expensive non-PBO CMO mode of
    /// §5).
    pub targets: Option<BTreeSet<RoutineId>>,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            small_callee_il: 12,
            hot_site_min_count: 64,
            hot_callee_il: 120,
            hot_site_dominance: 0.15,
            caller_growth_cap: 600,
            max_passes: 3,
            op_limit: None,
            targets: None,
        }
    }
}

/// Outcome of an inline pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Inline operations performed.
    pub inlines: u64,
    /// Candidate sites examined.
    pub considered: u64,
    /// Candidates rejected by the caller-growth cap.
    pub capped: u64,
    /// `true` if the operation limit stopped the pass.
    pub hit_op_limit: bool,
}

/// Result of splicing one callee into one caller.
pub(crate) struct SpliceInfo {
    /// Caller block that received the original call's continuation.
    pub(crate) cont_block: Block,
    /// Block that held the call (kept its original id).
    pub(crate) call_block: Block,
    /// First caller block id of the copied callee body.
    pub(crate) callee_base: u32,
    /// Number of callee blocks copied.
    pub(crate) callee_blocks: u32,
    /// Map from callee site id to the fresh caller site id.
    pub(crate) site_map: Vec<(CallSiteId, CallSiteId)>,
}

/// Splices `callee` into `caller` at call site `site`. Returns `None`
/// if the site is not found (already transformed).
pub(crate) fn splice_call(
    caller: &mut RoutineBody,
    site: CallSiteId,
    callee: &RoutineBody,
) -> Option<SpliceInfo> {
    // Locate the call.
    let mut found = None;
    'outer: for (bi, block) in caller.blocks.iter().enumerate() {
        for (ii, instr) in block.instrs.iter().enumerate() {
            if let Instr::Call { site: s, .. } = instr {
                if *s == site {
                    found = Some((bi, ii));
                    break 'outer;
                }
            }
        }
    }
    let (bi, ii) = found?;
    let (dst, args) = match &caller.blocks[bi].instrs[ii] {
        Instr::Call { dst, args, .. } => (*dst, args.clone()),
        _ => unreachable!("found index points at the call"),
    };

    // Interprocedural constant propagation at the seam: if an argument
    // register's last definition before the call is a constant, and
    // the callee never reassigns the corresponding parameter, every
    // load of that parameter in the copied body becomes that constant.
    // This is what lets the local optimizer later specialize the
    // inlined code (fold mode switches, delete cold arms) — "inlines
    // calls irrespective of module boundaries" only pays off because
    // of this downstream effect (§7).
    let mut const_args: Vec<Option<cmo_ir::Const>> = vec![None; args.len()];
    for (k, &arg) in args.iter().enumerate() {
        for instr in caller.blocks[bi].instrs[..ii].iter().rev() {
            if instr.def() == Some(arg) {
                if let Instr::Const { value, .. } = instr {
                    const_args[k] = Some(*value);
                }
                break;
            }
        }
    }
    // A parameter the callee stores to is not substitutable.
    for cb in &callee.blocks {
        for instr in &cb.instrs {
            if let Instr::StoreLocal { local, .. } = instr {
                if let Some(slot) = const_args.get_mut(local.index()) {
                    *slot = None;
                }
            }
        }
    }

    let vreg_offset = caller.n_vregs;
    caller.n_vregs += callee.n_vregs;
    let local_offset = caller.locals.len() as u32;
    for decl in &callee.locals {
        caller.locals.push(cmo_ir::LocalDecl {
            ty: decl.ty,
            is_param: false,
        });
    }
    let cont_idx = caller.blocks.len() as u32;
    let callee_base = cont_idx + 1;

    // Split the call block.
    let tail = caller.blocks[bi].instrs.split_off(ii + 1);
    caller.blocks[bi].instrs.pop(); // the call itself
    let cont_term = std::mem::replace(
        &mut caller.blocks[bi].term,
        Terminator::Jump(Block(callee_base)),
    );
    // Pass arguments into the callee's parameter locals.
    for (k, &arg) in args.iter().enumerate() {
        caller.blocks[bi].instrs.push(Instr::StoreLocal {
            local: Local(local_offset + k as u32),
            src: arg,
        });
    }
    // Continuation block.
    caller.blocks.push(cmo_ir::BlockData {
        instrs: tail,
        term: cont_term,
    });

    // Copy and remap the callee body.
    let rv = |v: VReg| VReg(v.0 + vreg_offset);
    let rl = |l: Local| Local(l.0 + local_offset);
    let rb = |b: Block| Block(b.0 + callee_base);
    let mut site_map = Vec::new();
    for cb in &callee.blocks {
        let mut instrs = Vec::with_capacity(cb.instrs.len());
        for instr in &cb.instrs {
            if let Instr::LoadLocal { dst, local } = instr {
                if let Some(Some(value)) = const_args.get(local.index()) {
                    instrs.push(Instr::Const {
                        dst: rv(*dst),
                        value: *value,
                    });
                    continue;
                }
            }
            let mut ni = instr.clone();
            match &mut ni {
                Instr::Const { dst, .. } | Instr::Input { dst } => *dst = rv(*dst),
                Instr::Bin { dst, lhs, rhs, .. } => {
                    *dst = rv(*dst);
                    *lhs = rv(*lhs);
                    *rhs = rv(*rhs);
                }
                Instr::Un { dst, src, .. } | Instr::Mov { dst, src } => {
                    *dst = rv(*dst);
                    *src = rv(*src);
                }
                Instr::LoadLocal { dst, local } => {
                    *dst = rv(*dst);
                    *local = rl(*local);
                }
                Instr::StoreLocal { local, src } => {
                    *local = rl(*local);
                    *src = rv(*src);
                }
                Instr::LoadGlobal { dst, .. } => *dst = rv(*dst),
                Instr::StoreGlobal { src, .. } => *src = rv(*src),
                Instr::LoadElem { dst, base, index } => {
                    *dst = rv(*dst);
                    *index = rv(*index);
                    if let cmo_ir::MemBase::Local(l) = base {
                        *l = rl(*l);
                    }
                }
                Instr::StoreElem { base, index, src } => {
                    *index = rv(*index);
                    *src = rv(*src);
                    if let cmo_ir::MemBase::Local(l) = base {
                        *l = rl(*l);
                    }
                }
                Instr::Call {
                    dst, args, site: s, ..
                } => {
                    if let Some(d) = dst {
                        *d = rv(*d);
                    }
                    for a in args.iter_mut() {
                        *a = rv(*a);
                    }
                    let fresh = caller.new_site();
                    site_map.push((*s, fresh));
                    *s = fresh;
                }
                Instr::Output { src } => *src = rv(*src),
            }
            instrs.push(ni);
        }
        let term = match &cb.term {
            Terminator::Jump(b) => Terminator::Jump(rb(*b)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: rv(*cond),
                then_bb: rb(*then_bb),
                else_bb: rb(*else_bb),
            },
            Terminator::Return(v) => {
                if let (Some(d), Some(v)) = (dst, v) {
                    instrs.push(Instr::Mov {
                        dst: d,
                        src: rv(*v),
                    });
                }
                Terminator::Jump(Block(cont_idx))
            }
        };
        caller.blocks.push(cmo_ir::BlockData { instrs, term });
    }

    Some(SpliceInfo {
        cont_block: Block(cont_idx),
        call_block: Block(bi as u32),
        callee_base,
        callee_blocks: callee.blocks.len() as u32,
        site_map,
    })
}

/// Runs the inlining phase over the session: plans the cluster
/// partition, runs every cluster sequentially (threading the op
/// limit), and merges the outcomes. The driver fans the same clusters
/// out across worker threads instead — both paths produce
/// byte-identical results (see [`crate::cluster`]).
///
/// # Errors
///
/// Propagates loader failures (including hard out-of-memory when
/// unselective inlining blows the heap, reproducing §5's failed pure
/// CMO compiles).
pub fn inline_pass(
    session: &mut HloSession,
    options: &InlineOptions,
) -> Result<InlineStats, NaimError> {
    let plan = plan_clusters(session, Some(options), None)?;
    let config = session.loader_config();
    let tel = session.telemetry().clone();
    let outcomes = run_clusters_seq(&session.program, &plan, &config, Some(options), None, &tel)?;
    let (stats, _) = merge_outcomes(session, &plan, outcomes)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::{link_objects, validate::validate_body};
    use cmo_naim::NaimConfig;
    use cmo_profile::{ProbeKey, ProfileDb, RoutineShape};

    fn session(srcs: &[(&str, &str)], db: Option<&ProfileDb>) -> HloSession {
        let objs = srcs
            .iter()
            .map(|(name, src)| compile_module(name, src).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        HloSession::new(unit, NaimConfig::default(), db).unwrap()
    }

    const CROSS: &[(&str, &str)] = &[
        (
            "a",
            "extern fn addone(x: int) -> int;\nfn main() -> int { return addone(41); }",
        ),
        ("b", "fn addone(x: int) -> int { return x + 1; }"),
    ];

    #[test]
    fn small_callee_inlines_across_modules() {
        let mut s = session(CROSS, None);
        let stats = inline_pass(&mut s, &InlineOptions::default()).unwrap();
        assert_eq!(stats.inlines, 1);
        let main = s.program.find_routine("main").unwrap();
        let body = s.body(main).unwrap().clone();
        // No calls remain in main.
        let calls = body
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count();
        assert_eq!(calls, 0);
        validate_body(main, &body, &s.program).unwrap();
    }

    #[test]
    fn big_cold_callee_does_not_inline_without_profile() {
        // A callee bigger than small_callee_il with no profile data.
        let big_body: String = (0..30)
            .map(|i| format!("acc = acc + {i} * x;"))
            .collect::<Vec<_>>()
            .join("\n");
        let callee =
            format!("fn work(x: int) -> int {{ var acc: int = 0; {big_body} return acc; }}");
        let mut s = session(
            &[
                (
                    "a",
                    "extern fn work(x: int) -> int;\nfn main() -> int { return work(3); }",
                ),
                ("b", &callee),
            ],
            None,
        );
        let stats = inline_pass(&mut s, &InlineOptions::default()).unwrap();
        assert_eq!(stats.inlines, 0);
    }

    #[test]
    fn hot_site_inlines_large_callee_with_profile() {
        let big_body: String = (0..30)
            .map(|i| format!("acc = acc + {i} * x;"))
            .collect::<Vec<_>>()
            .join("\n");
        let callee =
            format!("fn work(x: int) -> int {{ var acc: int = 0; {big_body} return acc; }}");
        let srcs: Vec<(&str, &str)> = vec![
            (
                "a",
                "extern fn work(x: int) -> int;\nfn main() -> int { return work(3); }",
            ),
            ("b", &callee),
        ];
        // Profile: main's single site is hot. Shapes must match the
        // current code, so build the session once to fetch shapes.
        let mut probe_db = ProfileDb::new();
        {
            let mut s = session(&srcs, None);
            let main = s.program.find_routine("main").unwrap();
            let work = s.program.find_routine("work").unwrap();
            let main_body = s.body(main).unwrap();
            let main_shape = RoutineShape {
                n_blocks: main_body.blocks.len() as u32,
                n_sites: main_body.next_site,
                fingerprint: main_body.fingerprint(),
            };
            let work_body = s.body(work).unwrap();
            let work_shape = RoutineShape {
                n_blocks: work_body.blocks.len() as u32,
                n_sites: work_body.next_site,
                fingerprint: work_body.fingerprint(),
            };
            probe_db.record(
                &[
                    (ProbeKey::block("main", 0), 500),
                    (ProbeKey::site("main", 0), 500),
                    (ProbeKey::block("work", 0), 500),
                ],
                &[
                    ("main".to_owned(), main_shape),
                    ("work".to_owned(), work_shape),
                ],
            );
        }
        let mut s = session(&srcs, Some(&probe_db));
        let opts = InlineOptions {
            hot_callee_il: 300,
            ..InlineOptions::default()
        };
        let stats = inline_pass(&mut s, &opts).unwrap();
        assert_eq!(stats.inlines, 1, "hot site should inline");
        let main = s.program.find_routine("main").unwrap();
        let body = s.body(main).unwrap().clone();
        validate_body(main, &body, &s.program).unwrap();
        // Maintained counts extend over the new blocks.
        let counts = s.block_counts(main).unwrap();
        assert_eq!(counts.len(), body.blocks.len());
        assert!(counts.iter().skip(1).any(|&c| c > 0), "inlined blocks hot");
    }

    #[test]
    fn op_limit_cuts_off_exactly() {
        let srcs = &[(
            "m",
            r#"
            static fn one() -> int { return 1; }
            fn main() -> int { return one() + one() + one(); }
            "#,
        )];
        let mut s = session(srcs, None);
        let stats = inline_pass(
            &mut s,
            &InlineOptions {
                op_limit: Some(2),
                ..InlineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(stats.inlines, 2);
        assert!(stats.hit_op_limit);
        let main = s.program.find_routine("main").unwrap();
        let calls = s
            .body(main)
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count();
        assert_eq!(calls, 1, "exactly one call left");
    }

    #[test]
    fn selectivity_targets_limit_callers() {
        let srcs = &[(
            "m",
            r#"
            static fn one() -> int { return 1; }
            fn cold() -> int { return one(); }
            fn main() -> int { return one(); }
            "#,
        )];
        let mut s = session(srcs, None);
        let main = s.program.find_routine("main").unwrap();
        let cold = s.program.find_routine("cold").unwrap();
        let stats = inline_pass(
            &mut s,
            &InlineOptions {
                targets: Some([main].into_iter().collect()),
                ..InlineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(stats.inlines, 1);
        let cold_calls = s
            .body(cold)
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count();
        assert_eq!(cold_calls, 1, "cold caller untouched");
    }

    #[test]
    fn growth_cap_prevents_explosion() {
        // Mutually recursive pair would grow unboundedly without caps.
        let srcs = &[(
            "m",
            r#"
            fn ping(n: int) -> int { if (n < 1) { return 0; } return pong(n - 1); }
            fn pong(n: int) -> int { if (n < 1) { return 1; } return ping(n - 1); }
            fn main() -> int { return ping(10); }
            "#,
        )];
        let mut s = session(srcs, None);
        let opts = InlineOptions {
            small_callee_il: 100,
            caller_growth_cap: 120,
            max_passes: 10,
            ..InlineOptions::default()
        };
        let stats = inline_pass(&mut s, &opts).unwrap();
        assert!(stats.inlines > 0);
        assert!(stats.capped > 0, "cap must engage");
        for name in ["main", "ping", "pong"] {
            let rid = s.program.find_routine(name).unwrap();
            let body = s.body(rid).unwrap().clone();
            validate_body(rid, &body, &s.program).unwrap();
            assert!(body.instr_count() < 400);
        }
    }

    #[test]
    fn transitive_inlining_across_passes() {
        let srcs = &[(
            "m",
            r#"
            static fn inner() -> int { return 5; }
            static fn middle() -> int { return inner() + 1; }
            fn main() -> int { return middle(); }
            "#,
        )];
        let mut s = session(srcs, None);
        let stats = inline_pass(&mut s, &InlineOptions::default()).unwrap();
        assert!(stats.inlines >= 2);
        let main = s.program.find_routine("main").unwrap();
        let calls = s
            .body(main)
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count();
        assert_eq!(calls, 0, "both levels inlined into main");
    }
}
