//! The HLO optimization session: program state behind the NAIM loader.

use cmo_ir::{LinkedUnit, ModuleId, Program, RoutineBody, RoutineId, Transitory};
use cmo_naim::{
    LoaderStats, MemClass, MemorySnapshot, NaimConfig, NaimError, PoolId, PoolKind, ShardedLoader,
};
use cmo_profile::{ProfileDb, RoutineShape};
use cmo_telemetry::Telemetry;
use std::collections::BTreeMap;

/// What [`HloSession::into_parts`] yields: the program, every routine
/// body, every module symbol table, and the maintained per-routine
/// block counts.
pub type SessionParts = (
    Program,
    Vec<RoutineBody>,
    Vec<cmo_ir::ModuleSymbols>,
    Vec<Option<Vec<u64>>>,
);

/// Counters describing HLO activity for one compilation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HloStats {
    /// Inline operations performed.
    pub inlines: u64,
    /// Call sites considered by the inliner.
    pub sites_considered: u64,
    /// Loads of never-stored globals folded to constants.
    pub globals_folded: u64,
    /// Stores to never-read globals removed.
    pub dead_stores_removed: u64,
    /// Routines found unreachable after optimization.
    pub dead_routines: u64,
    /// Specialized clones created for constant arguments.
    pub clones: u64,
}

/// One optimization session over a linked program.
///
/// Owns the always-resident program symbol information and the sharded
/// NAIM loader holding every transitory pool (shard count comes from
/// [`NaimConfig::shards`]). All body access goes through
/// [`HloSession::body`] / [`HloSession::body_mut`] so the loader can
/// manage residency, and phases call [`HloSession::unload_all`] at
/// their boundaries ("clients simply request that all unneeded pools
/// are unloaded", §4.3). The session is `Send`, so the driver may move
/// it between pipeline threads.
#[derive(Debug)]
pub struct HloSession {
    /// The program symbol tables (global objects, always resident).
    pub program: Program,
    loader: ShardedLoader<Transitory>,
    routine_pool: Vec<PoolId>,
    symtab_pool: Vec<PoolId>,
    /// Maintained block execution counts per routine (derived data;
    /// correlated from the profile db at session start and kept up to
    /// date by transformations).
    counts: Vec<Option<Vec<u64>>>,
    /// Maintained call-site counts per routine (derived data).
    site_counts: Vec<BTreeMap<u32, u64>>,
    /// Whether the stored profile was stale for this routine.
    stale: Vec<bool>,
    pub(crate) stats: HloStats,
    telemetry: Telemetry,
    /// Loader activity absorbed from per-cluster loaders after the
    /// parallel inline/clone fan-out.
    folded_loader: LoaderStats,
    /// Peak memory absorbed from per-cluster loaders, folded as a
    /// concurrent peak on top of the at-split snapshot.
    folded_peak: MemorySnapshot,
}

/// Shape of a body as HLO sees it (for profile correlation).
fn shape_of(body: &RoutineBody) -> RoutineShape {
    RoutineShape {
        n_blocks: body.blocks.len() as u32,
        n_sites: body.next_site,
        fingerprint: body.fingerprint(),
    }
}

impl HloSession {
    /// Builds a session from a linked unit, moving every routine body
    /// and module symbol table into NAIM pools and correlating profile
    /// data with the current program structure (§3).
    ///
    /// # Errors
    ///
    /// Returns a NAIM error if the initial read-in exceeds the hard
    /// memory limit (the paper's failed non-selective compiles).
    pub fn new(
        unit: LinkedUnit,
        config: NaimConfig,
        db: Option<&ProfileDb>,
    ) -> Result<Self, NaimError> {
        HloSession::new_with_telemetry(unit, config, db, Telemetry::disabled())
    }

    /// Like [`HloSession::new`], but attaches a telemetry sink: the
    /// loader emits pool-state transition events into it, and HLO
    /// passes emit their decision events through
    /// [`HloSession::telemetry`].
    ///
    /// # Errors
    ///
    /// Returns a NAIM error if the initial read-in exceeds the hard
    /// memory limit.
    pub fn new_with_telemetry(
        unit: LinkedUnit,
        config: NaimConfig,
        db: Option<&ProfileDb>,
        telemetry: Telemetry,
    ) -> Result<Self, NaimError> {
        let LinkedUnit {
            program,
            bodies,
            symtabs,
        } = unit;
        let mut loader = ShardedLoader::new(config);
        loader.set_telemetry(telemetry.clone());
        loader.account(MemClass::Global, program.heap_bytes() as isize);

        let mut counts = Vec::with_capacity(bodies.len());
        let mut site_counts = Vec::with_capacity(bodies.len());
        let mut stale = Vec::with_capacity(bodies.len());
        let mut routine_pool = Vec::with_capacity(bodies.len());
        for (i, body) in bodies.iter().enumerate() {
            let rid = RoutineId::from_index(i);
            let name = program.name(program.routine(rid).name);
            let (blocks, sites, was_stale) = match db {
                None => (None, BTreeMap::new(), false),
                Some(db) => {
                    let current = shape_of(body);
                    let (freshness, prof) = db.lookup(name, current);
                    match prof {
                        None => (None, BTreeMap::new(), false),
                        Some(p) => {
                            let was_stale = freshness == cmo_profile::Freshness::Stale;
                            let mut blocks = p.blocks.clone();
                            blocks.resize(body.blocks.len(), 0);
                            let sites: BTreeMap<u32, u64> = p
                                .sites
                                .iter()
                                .enumerate()
                                .take(body.next_site as usize)
                                .map(|(s, &c)| (s as u32, c))
                                .collect();
                            (Some(blocks), sites, was_stale)
                        }
                    }
                }
            };
            counts.push(blocks);
            site_counts.push(sites);
            stale.push(was_stale);
        }
        // Read-in: each module's pools are registered and immediately
        // marked unloadable, so the loader's thresholds govern peak
        // memory from the first module on (§5's read-in pass) instead
        // of everything sitting expanded at once.
        for body in bodies {
            let pool = loader.insert(Transitory::Routine(body), PoolKind::Ir);
            loader.unload(pool)?;
            routine_pool.push(pool);
        }
        let mut symtab_pool = Vec::with_capacity(symtabs.len());
        for st in symtabs {
            let pool = loader.insert(Transitory::SymTab(st), PoolKind::SymTab);
            loader.unload(pool)?;
            symtab_pool.push(pool);
        }
        // Derived-data accounting for the maintained counts.
        let derived: usize = counts
            .iter()
            .map(|c| c.as_ref().map_or(0, |v| v.len() * 8 + 24))
            .sum();
        loader.account(MemClass::Derived, derived as isize);
        loader.enforce()?;
        Ok(HloSession {
            program,
            loader,
            routine_pool,
            symtab_pool,
            counts,
            site_counts,
            stale,
            stats: HloStats::default(),
            telemetry,
            folded_loader: LoaderStats::default(),
            folded_peak: MemorySnapshot::default(),
        })
    }

    /// The telemetry sink shared with this session's loader. Disabled
    /// (a no-op handle) unless the session was built with
    /// [`HloSession::new_with_telemetry`].
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of routines in the program.
    #[must_use]
    pub fn n_routines(&self) -> usize {
        self.routine_pool.len()
    }

    /// Shared access to a routine body (loads it if necessary).
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn body(&mut self, rid: RoutineId) -> Result<&RoutineBody, NaimError> {
        let pool = self.routine_pool[rid.index()];
        Ok(self.loader.get(pool)?.routine())
    }

    /// Exclusive access to a routine body.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn body_mut(&mut self, rid: RoutineId) -> Result<&mut RoutineBody, NaimError> {
        let pool = self.routine_pool[rid.index()];
        Ok(self.loader.get_mut(pool)?.routine_mut())
    }

    /// Shared access to a module symbol table.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn symtab(&mut self, m: ModuleId) -> Result<&cmo_ir::ModuleSymbols, NaimError> {
        let pool = self.symtab_pool[m.index()];
        Ok(self.loader.get(pool)?.symtab())
    }

    /// Declares a routine body unneeded for now.
    ///
    /// # Errors
    ///
    /// Propagates loader failures (hard out-of-memory).
    pub fn unload(&mut self, rid: RoutineId) -> Result<(), NaimError> {
        self.loader.unload(self.routine_pool[rid.index()])
    }

    /// Declares everything unneeded (phase boundary).
    ///
    /// # Errors
    ///
    /// Propagates loader failures (hard out-of-memory).
    pub fn unload_all(&mut self) -> Result<(), NaimError> {
        self.loader.unload_all()
    }

    /// Current memory snapshot (the Figure 4/5 measurements). Peaks
    /// include any folded per-cluster loader peaks, so the figures see
    /// the true high-water mark of the partitioned pipeline.
    #[must_use]
    pub fn memory(&self) -> MemorySnapshot {
        let mut snap = self.loader.memory();
        for k in 0..snap.peak.len() {
            snap.peak[k] = snap.peak[k].max(self.folded_peak.peak[k]);
        }
        snap.peak_total = snap.peak_total.max(self.folded_peak.peak_total);
        snap
    }

    /// Loader activity counters, including activity absorbed from
    /// per-cluster loaders.
    #[must_use]
    pub fn loader_stats(&self) -> LoaderStats {
        let mut stats = self.loader.stats();
        stats.absorb(&self.folded_loader);
        stats
    }

    /// The NAIM configuration this session's loader runs under, for
    /// deriving per-cluster loaders with the same thresholds.
    #[must_use]
    pub fn loader_config(&self) -> NaimConfig {
        self.loader.config().clone()
    }

    /// Folds one finished cluster's loader activity into the session:
    /// counters are summed, and the cluster's peak is treated as
    /// concurrent with the `at_split` snapshot taken when the fan-out
    /// began.
    pub(crate) fn absorb_cluster_loader(
        &mut self,
        at_split: &MemorySnapshot,
        stats: &LoaderStats,
        peak: &MemorySnapshot,
    ) {
        self.folded_loader.absorb(stats);
        self.folded_peak.fold_concurrent_peak(at_split, peak);
    }

    /// HLO transformation counters.
    #[must_use]
    pub fn stats(&self) -> HloStats {
        self.stats
    }

    /// Records the number of routines found dead after optimization.
    pub fn record_dead_routines(&mut self, n: u64) {
        self.stats.dead_routines = n;
    }

    /// Records extra derived-data bytes (analysis results).
    pub fn account_derived(&mut self, delta: isize) {
        self.loader.account(MemClass::Derived, delta);
    }

    /// Maintained block counts for `rid`, if profile data existed.
    #[must_use]
    pub fn block_counts(&self, rid: RoutineId) -> Option<&[u64]> {
        self.counts[rid.index()].as_deref()
    }

    /// Maintained site count for a call site of `rid`.
    #[must_use]
    pub fn site_count(&self, rid: RoutineId, site: u32) -> u64 {
        self.site_counts[rid.index()]
            .get(&site)
            .copied()
            .unwrap_or(0)
    }

    /// Entry count (block 0) for `rid`, 0 when unprofiled.
    #[must_use]
    pub fn entry_count(&self, rid: RoutineId) -> u64 {
        self.counts[rid.index()]
            .as_ref()
            .and_then(|c| c.first().copied())
            .unwrap_or(0)
    }

    /// Whether the profile for `rid` was stale (shape changed since
    /// instrumentation, §6.2).
    #[must_use]
    pub fn profile_stale(&self, rid: RoutineId) -> bool {
        self.stale[rid.index()]
    }

    /// Returns `true` if any routine had profile counts.
    #[must_use]
    pub fn has_profile(&self) -> bool {
        self.counts.iter().any(Option::is_some)
    }

    pub(crate) fn site_counts_of(&self, rid: RoutineId) -> &BTreeMap<u32, u64> {
        &self.site_counts[rid.index()]
    }

    /// Replaces the maintained counts of `rid` wholesale (cluster
    /// merge: the per-cluster view hands back its transformed counts).
    pub(crate) fn set_counts(
        &mut self,
        rid: RoutineId,
        counts: Option<Vec<u64>>,
        site_counts: BTreeMap<u32, u64>,
    ) {
        let i = rid.index();
        self.counts[i] = counts;
        self.site_counts[i] = site_counts;
    }

    /// Registers a new routine created by optimization (cloning): adds
    /// its metadata to the program symbol table and its body to a new
    /// NAIM pool, with maintained counts.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn add_cloned_routine(
        &mut self,
        meta: cmo_ir::RoutineMeta,
        body: RoutineBody,
        counts: Option<Vec<u64>>,
        site_counts: BTreeMap<u32, u64>,
    ) -> Result<RoutineId, NaimError> {
        let rid = self.program.add_routine(meta);
        debug_assert_eq!(rid.index(), self.routine_pool.len());
        let pool = self.loader.insert(Transitory::Routine(body), PoolKind::Ir);
        self.loader.unload(pool)?;
        self.routine_pool.push(pool);
        self.counts.push(counts);
        self.site_counts.push(site_counts);
        self.stale.push(false);
        Ok(rid)
    }

    /// Consumes the session, returning the program and all (possibly
    /// transformed) routine bodies plus maintained block counts, ready
    /// for LLO and linking.
    ///
    /// # Errors
    ///
    /// Propagates loader failures while draining pools.
    pub fn into_parts(mut self) -> Result<SessionParts, NaimError> {
        let mut bodies = Vec::with_capacity(self.routine_pool.len());
        for i in 0..self.routine_pool.len() {
            let rid = RoutineId::from_index(i);
            bodies.push(self.body(rid)?.clone());
        }
        let mut symtabs = Vec::with_capacity(self.symtab_pool.len());
        for m in 0..self.symtab_pool.len() {
            symtabs.push(self.symtab(ModuleId::from_index(m))?.clone());
        }
        Ok((self.program, bodies, symtabs, self.counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_is_send() {
        // The parallel driver moves sessions (and their sharded
        // loaders) across pipeline threads.
        fn assert_send<T: Send>() {}
        assert_send::<HloSession>();
    }
}
