//! Profile-guided basic-block layout.
//!
//! With PBO the compiler "optimizes the layout of basic blocks" (§2):
//! hot successors are placed on the fall-through path so the machine
//! pays fewer taken-branch penalties and packs hot code densely for the
//! i-cache. Without profile data, source order is kept.

use cmo_ir::{Block, RoutineBody};

/// Computes a block ordering. `counts[b]` is the execution count of
/// block `b` (from the profile database, or maintained by HLO through
/// its transformations); `None` keeps source order.
///
/// The algorithm is greedy chain formation: starting from the entry,
/// repeatedly extend the current chain with the hottest unplaced
/// successor; when the chain dies, restart from the hottest unplaced
/// block. Ties break toward lower block ids, keeping layout
/// deterministic (§6.2).
#[must_use]
pub fn order_blocks(body: &RoutineBody, counts: Option<&[u64]>) -> Vec<Block> {
    let n = body.blocks.len();
    let Some(counts) = counts else {
        return (0..n).map(Block::from_index).collect();
    };
    let count = |b: Block| counts.get(b.index()).copied().unwrap_or(0);
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = Some(Block(0));
    loop {
        match cur {
            Some(b) if !placed[b.index()] => {
                placed[b.index()] = true;
                order.push(b);
                cur = body.blocks[b.index()]
                    .term
                    .successors()
                    .into_iter()
                    .filter(|s| !placed[s.index()])
                    .max_by(|a, b| count(*a).cmp(&count(*b)).then(b.cmp(a)));
            }
            _ => {
                // Start a new chain at the hottest unplaced block.
                cur = (0..n)
                    .map(Block::from_index)
                    .filter(|b| !placed[b.index()])
                    .max_by(|a, b| count(*a).cmp(&count(*b)).then(b.cmp(a)));
                if cur.is_none() {
                    return order;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_ir::{BlockData, Terminator};

    /// entry -> branch(b1 cold, b2 hot); b1 -> b3; b2 -> b3; b3 ret
    fn diamond() -> RoutineBody {
        let mut body = RoutineBody::new();
        let c = body.new_vreg();
        body.blocks.push(BlockData::new(Terminator::Branch {
            cond: c,
            then_bb: Block(1),
            else_bb: Block(2),
        }));
        body.blocks.push(BlockData::new(Terminator::Jump(Block(3))));
        body.blocks.push(BlockData::new(Terminator::Jump(Block(3))));
        body.blocks.push(BlockData::new(Terminator::Return(None)));
        body
    }

    #[test]
    fn no_profile_keeps_source_order() {
        let body = diamond();
        let order = order_blocks(&body, None);
        assert_eq!(order, vec![Block(0), Block(1), Block(2), Block(3)]);
    }

    #[test]
    fn hot_path_is_contiguous() {
        let body = diamond();
        // Block 2 is hot.
        let order = order_blocks(&body, Some(&[100, 1, 99, 100]));
        assert_eq!(order[0], Block(0));
        assert_eq!(order[1], Block(2), "hot successor follows entry");
        // All blocks placed exactly once.
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![Block(0), Block(1), Block(2), Block(3)]);
    }

    #[test]
    fn unreached_blocks_still_get_placed() {
        let mut body = diamond();
        // Add an orphan block (e.g. kept alive by conservative opt).
        body.blocks.push(BlockData::new(Terminator::Return(None)));
        let order = order_blocks(&body, Some(&[10, 1, 9, 10, 0]));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn entry_is_always_first() {
        let body = diamond();
        let order = order_blocks(&body, Some(&[0, 1000, 1000, 1000]));
        assert_eq!(order[0], Block(0));
    }
}
