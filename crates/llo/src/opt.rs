//! Local (intraprocedural) IL optimizations.
//!
//! These are the +O2-level optimizations every routine gets regardless
//! of CMO: per-block constant folding/propagation (through virtual
//! registers and local scalars — MLC has no pointers, so locals cannot
//! alias), copy propagation, dead-code elimination, redundant-branch
//! elimination, and unreachable-block removal. They also run *after*
//! inlining, which is where the paper's CMO wins materialize: inlined
//! constants feed folding, and inlined branches become redundant.

use cmo_ir::{BinOp, Block, BlockData, Const, Instr, Local, RoutineBody, Terminator, UnOp, VReg};
use std::collections::HashMap;

/// Statistics from one optimization run, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions replaced by constants.
    pub folded: usize,
    /// Copies propagated.
    pub copies: usize,
    /// Dead instructions removed.
    pub dead: usize,
    /// Conditional branches turned unconditional.
    pub branches: usize,
    /// Unreachable blocks removed.
    pub unreachable: usize,
}

fn fold_bin(op: BinOp, a: Const, b: Const) -> Option<Const> {
    use Const::{F, I};
    Some(match (op, a, b) {
        (BinOp::Add, I(x), I(y)) => I(x.wrapping_add(y)),
        (BinOp::Sub, I(x), I(y)) => I(x.wrapping_sub(y)),
        (BinOp::Mul, I(x), I(y)) => I(x.wrapping_mul(y)),
        (BinOp::Div, I(x), I(y)) => I(if y == 0 { 0 } else { x.wrapping_div(y) }),
        (BinOp::Rem, I(x), I(y)) => I(if y == 0 { 0 } else { x.wrapping_rem(y) }),
        (BinOp::And, I(x), I(y)) => I(x & y),
        (BinOp::Or, I(x), I(y)) => I(x | y),
        (BinOp::Xor, I(x), I(y)) => I(x ^ y),
        (BinOp::Shl, I(x), I(y)) => I(x.wrapping_shl(y as u32 & 63)),
        (BinOp::Shr, I(x), I(y)) => I(x.wrapping_shr(y as u32 & 63)),
        (BinOp::Eq, I(x), I(y)) => I(i64::from(x == y)),
        (BinOp::Ne, I(x), I(y)) => I(i64::from(x != y)),
        (BinOp::Lt, I(x), I(y)) => I(i64::from(x < y)),
        (BinOp::Le, I(x), I(y)) => I(i64::from(x <= y)),
        (BinOp::FAdd, F(x), F(y)) => F(x + y),
        (BinOp::FSub, F(x), F(y)) => F(x - y),
        (BinOp::FMul, F(x), F(y)) => F(x * y),
        (BinOp::FDiv, F(x), F(y)) => F(x / y),
        (BinOp::FLt, F(x), F(y)) => I(i64::from(x < y)),
        (BinOp::FEq, F(x), F(y)) => I(i64::from(x == y)),
        _ => return None,
    })
}

fn fold_un(op: UnOp, v: Const) -> Option<Const> {
    use Const::{F, I};
    Some(match (op, v) {
        (UnOp::Neg, I(x)) => I(x.wrapping_neg()),
        (UnOp::Not, I(x)) => I(i64::from(x == 0)),
        (UnOp::FNeg, F(x)) => F(-x),
        (UnOp::I2F, I(x)) => F(x as f64),
        (UnOp::F2I, F(x)) => I(x as i64),
        _ => return None,
    })
}

/// Per-block constant and copy propagation.
///
/// Returns the number of folds and propagated copies. Virtual-register
/// and local-scalar values are tracked within each block; both maps are
/// conservatively cleared at block entry (vregs may be live across
/// blocks after inlining, but then they are not redefined here, so
/// per-block tracking of *definitions seen in this block* is sound).
/// Local scalars also forward the last stored vreg (`store l, v; ... ;
/// x = load l` becomes `x = mov v`), which is what makes inlined
/// argument traffic disappear after block merging.
pub fn const_and_copy_prop(body: &mut RoutineBody) -> OptStats {
    let mut stats = OptStats::default();
    for block in &mut body.blocks {
        // Known constant value of a vreg / local, within this block.
        let mut vconst: HashMap<VReg, Const> = HashMap::new();
        let mut lconst: HashMap<Local, Const> = HashMap::new();
        // Last vreg stored to a local, within this block.
        let mut lcopy: HashMap<Local, VReg> = HashMap::new();
        // Copy chains: vreg -> earlier equivalent vreg.
        let mut copy_of: HashMap<VReg, VReg> = HashMap::new();

        let resolve = |copy_of: &HashMap<VReg, VReg>, mut r: VReg| -> VReg {
            let mut hops = 0;
            while let Some(&s) = copy_of.get(&r) {
                r = s;
                hops += 1;
                if hops > 64 {
                    break;
                }
            }
            r
        };

        for instr in &mut block.instrs {
            // Rewrite sources through copy chains first.
            let before = instr.clone();
            match instr {
                Instr::Bin { lhs, rhs, .. } => {
                    *lhs = resolve(&copy_of, *lhs);
                    *rhs = resolve(&copy_of, *rhs);
                }
                Instr::Un { src, .. }
                | Instr::Mov { src, .. }
                | Instr::StoreLocal { src, .. }
                | Instr::StoreGlobal { src, .. }
                | Instr::Output { src } => *src = resolve(&copy_of, *src),
                Instr::LoadElem { index, .. } => *index = resolve(&copy_of, *index),
                Instr::StoreElem { index, src, .. } => {
                    *index = resolve(&copy_of, *index);
                    *src = resolve(&copy_of, *src);
                }
                Instr::Call { args, .. } => {
                    for a in args.iter_mut() {
                        *a = resolve(&copy_of, *a);
                    }
                }
                _ => {}
            }
            if *instr != before {
                stats.copies += 1;
            }

            // A new definition invalidates stale facts about dst.
            if let Some(d) = instr.def() {
                vconst.remove(&d);
                copy_of.remove(&d);
                // Anything copying from d is now stale.
                copy_of.retain(|_, v| *v != d);
                lcopy.retain(|_, v| *v != d);
            }

            // Learn facts / fold.
            match instr {
                Instr::Const { dst, value } => {
                    vconst.insert(*dst, *value);
                }
                Instr::Mov { dst, src } => {
                    if let Some(&c) = vconst.get(src) {
                        vconst.insert(*dst, c);
                        *instr = Instr::Const {
                            dst: *dst,
                            value: c,
                        };
                        stats.folded += 1;
                    } else {
                        copy_of.insert(*dst, *src);
                    }
                }
                Instr::Bin { dst, op, lhs, rhs } => {
                    if let (Some(&a), Some(&b)) = (vconst.get(lhs), vconst.get(rhs)) {
                        if let Some(c) = fold_bin(*op, a, b) {
                            vconst.insert(*dst, c);
                            *instr = Instr::Const {
                                dst: *dst,
                                value: c,
                            };
                            stats.folded += 1;
                        }
                    }
                }
                Instr::Un { dst, op, src } => {
                    if let Some(&v) = vconst.get(src) {
                        if let Some(c) = fold_un(*op, v) {
                            vconst.insert(*dst, c);
                            *instr = Instr::Const {
                                dst: *dst,
                                value: c,
                            };
                            stats.folded += 1;
                        }
                    }
                }
                Instr::StoreLocal { local, src } => {
                    match vconst.get(src) {
                        Some(&c) => {
                            lconst.insert(*local, c);
                            lcopy.remove(local);
                        }
                        None => {
                            lconst.remove(local);
                            lcopy.insert(*local, *src);
                        }
                    };
                }
                Instr::LoadLocal { dst, local } => {
                    if let Some(&c) = lconst.get(local) {
                        vconst.insert(*dst, c);
                        *instr = Instr::Const {
                            dst: *dst,
                            value: c,
                        };
                        stats.folded += 1;
                    } else if let Some(&v) = lcopy.get(local) {
                        let dst = *dst;
                        *instr = Instr::Mov { dst, src: v };
                        copy_of.insert(dst, v);
                        stats.copies += 1;
                    }
                }
                _ => {}
            }
        }

        // Fold constant branch conditions.
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = block.term
        {
            let cond = resolve(&copy_of, cond);
            if let Some(&c) = vconst.get(&cond) {
                block.term = Terminator::Jump(if c.is_zero() { else_bb } else { then_bb });
                stats.branches += 1;
            }
        }
    }
    stats
}

/// Straightens control flow: threads jumps through empty blocks,
/// normalizes branches with equal targets into jumps, and merges a
/// block into its unique `Jump` predecessor. Merging is what exposes
/// inlined callee entries to the per-block propagator — the pre-call
/// block ends in a jump to the single-predecessor callee entry, and
/// after merging, constant arguments flow into the callee body.
pub fn merge_blocks(body: &mut RoutineBody) -> OptStats {
    let mut stats = OptStats::default();
    let n = body.blocks.len();

    // Branch with both edges equal -> jump.
    for block in &mut body.blocks {
        if let Terminator::Branch {
            then_bb, else_bb, ..
        } = block.term
        {
            if then_bb == else_bb {
                block.term = Terminator::Jump(then_bb);
                stats.branches += 1;
            }
        }
    }

    // Jump threading: resolve chains of empty jump-only blocks.
    let thread = |mut b: Block, body: &RoutineBody| -> Block {
        let mut hops = 0;
        loop {
            let target = &body.blocks[b.index()];
            match target.term {
                Terminator::Jump(next) if target.instrs.is_empty() && next != b && hops < n => {
                    b = next;
                    hops += 1;
                }
                _ => return b,
            }
        }
    };
    for i in 0..n {
        let term = body.blocks[i].term.clone();
        body.blocks[i].term = match term {
            Terminator::Jump(t) => Terminator::Jump(thread(t, body)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond,
                then_bb: thread(then_bb, body),
                else_bb: thread(else_bb, body),
            },
            r @ Terminator::Return(_) => r,
        };
    }

    // Merge single-predecessor jump targets into their predecessor.
    let mut pred_count = vec![0usize; n];
    for block in &body.blocks {
        for s in block.term.successors() {
            pred_count[s.index()] += 1;
        }
    }
    for a in 0..n {
        while let Terminator::Jump(b) = body.blocks[a].term {
            if b.index() == a || b.index() == 0 || pred_count[b.index()] != 1 {
                break;
            }
            let merged = std::mem::take(&mut body.blocks[b.index()].instrs);
            let term =
                std::mem::replace(&mut body.blocks[b.index()].term, Terminator::Return(None));
            // Leave b as an unreachable husk; remove_unreachable
            // renumbers later.
            pred_count[b.index()] = 0;
            body.blocks[a].instrs.extend(merged);
            body.blocks[a].term = term;
            stats.unreachable += 1;
        }
    }
    stats
}

/// Removes instructions whose results are never used anywhere in the
/// routine and which have no side effects, plus stores to scalar
/// locals that are never loaded (after inlining and propagation,
/// parameter-passing slots die this way). Iterates to a fixed point.
pub fn dead_code_elim(body: &mut RoutineBody) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let mut used = vec![false; body.n_vregs as usize];
        let mut mark = |r: VReg| {
            if let Some(slot) = used.get_mut(r.index()) {
                *slot = true;
            }
        };
        // Scalar locals that are ever loaded; array locals are kept
        // conservatively (any element access pins the whole array).
        let mut local_read = vec![false; body.locals.len()];
        for (i, decl) in body.locals.iter().enumerate() {
            if decl.ty.is_array() {
                local_read[i] = true;
            }
        }
        for block in &body.blocks {
            for instr in &block.instrs {
                for u in instr.uses() {
                    mark(u);
                }
                if let Instr::LoadLocal { local, .. } = instr {
                    local_read[local.index()] = true;
                }
            }
            if let Some(u) = block.term.use_reg() {
                mark(u);
            }
        }
        let mut removed = 0;
        for block in &mut body.blocks {
            block.instrs.retain(|i| {
                let dead = match i {
                    Instr::StoreLocal { local, .. } => !local_read[local.index()],
                    _ => {
                        !i.has_side_effects()
                            && i.def()
                                .is_some_and(|d| !used.get(d.index()).copied().unwrap_or(true))
                    }
                };
                if dead {
                    removed += 1;
                }
                !dead
            });
        }
        stats.dead += removed;
        if removed == 0 {
            return stats;
        }
    }
}

/// Removes blocks unreachable from the entry, remapping block ids and
/// (when supplied) the maintained block-count vector — profile counts
/// live in the pre-optimization block-id domain and must follow the
/// blocks through every structural transformation (§3: "the compiler
/// correlates profile information from the database with current
/// program structures").
pub fn remove_unreachable(body: &mut RoutineBody, counts: Option<&mut Vec<u64>>) -> OptStats {
    let mut stats = OptStats::default();
    let n = body.blocks.len();
    let mut reachable = vec![false; n];
    let mut work = vec![Block(0)];
    while let Some(b) = work.pop() {
        if reachable[b.index()] {
            continue;
        }
        reachable[b.index()] = true;
        for s in body.blocks[b.index()].term.successors() {
            if !reachable[s.index()] {
                work.push(s);
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        return stats;
    }
    let mut remap = vec![Block(u32::MAX); n];
    let mut new_blocks: Vec<BlockData> = Vec::new();
    for (i, keep) in reachable.iter().enumerate() {
        if *keep {
            remap[i] = Block::from_index(new_blocks.len());
            new_blocks.push(body.blocks[i].clone());
        } else {
            stats.unreachable += 1;
        }
    }
    if let Some(counts) = counts {
        counts.resize(n, 0);
        let mut new_counts = vec![0u64; new_blocks.len()];
        for (i, keep) in reachable.iter().enumerate() {
            if *keep {
                new_counts[remap[i].index()] = counts[i];
            }
        }
        *counts = new_counts;
    }
    for block in &mut new_blocks {
        block.term = match block.term.clone() {
            Terminator::Jump(b) => Terminator::Jump(remap[b.index()]),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond,
                then_bb: remap[then_bb.index()],
                else_bb: remap[else_bb.index()],
            },
            r @ Terminator::Return(_) => r,
        };
    }
    body.blocks = new_blocks;
    stats
}

/// The full local optimization pipeline, iterated until quiescent.
pub fn optimize(body: &mut RoutineBody) -> OptStats {
    optimize_with_counts(body, None)
}

/// [`optimize`], additionally maintaining a block-count vector through
/// every structural change so profile-guided layout downstream sees
/// correlated data.
pub fn optimize_with_counts(body: &mut RoutineBody, mut counts: Option<&mut Vec<u64>>) -> OptStats {
    let mut total = OptStats::default();
    for _ in 0..12 {
        let m = merge_blocks(body);
        let a = const_and_copy_prop(body);
        let b = dead_code_elim(body);
        let c = remove_unreachable(body, counts.as_deref_mut());
        total.folded += a.folded;
        total.copies += a.copies;
        total.branches += a.branches + m.branches;
        total.dead += b.dead;
        total.unreachable += c.unreachable + m.unreachable;
        if m.unreachable + m.branches + a.folded + a.branches + b.dead + c.unreachable == 0 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;

    fn body_of(src: &str) -> RoutineBody {
        let obj = compile_module("m", src).unwrap();
        let unit = link_objects(vec![obj]).unwrap();
        let main = unit.program.find_routine("main").unwrap();
        unit.bodies[main.index()].clone()
    }

    #[test]
    fn constants_fold_through_locals() {
        let mut body =
            body_of("fn main() -> int { var x: int = 6; var y: int = 7; return x * y; }");
        let before = body.instr_count();
        optimize(&mut body);
        // Final shape: stores remain (locals could be observed by a
        // debugger; DCE of dead stores is not done), but the multiply
        // folds to a constant.
        let has_mul = body
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        assert!(body.instr_count() <= before);
        let has_42 = body.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i,
                Instr::Const {
                    value: Const::I(42),
                    ..
                }
            )
        });
        assert!(has_42);
    }

    #[test]
    fn constant_branch_becomes_jump_and_prunes_blocks() {
        let mut body =
            body_of("fn main() -> int { if (1 < 2) { return 10; } else { return 20; } }");
        let blocks_before = body.blocks.len();
        let stats = optimize(&mut body);
        assert!(stats.branches >= 1);
        assert!(body.blocks.len() < blocks_before);
        assert!(body
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Branch { .. })));
    }

    #[test]
    fn dead_code_is_removed() {
        let mut body = body_of("fn main() -> int { var x: int = 3 + 4; return 1; }");
        let stats = optimize(&mut body);
        assert!(stats.dead > 0);
    }

    #[test]
    fn side_effects_are_preserved() {
        let src = r#"
            extern fn effect() -> int;
            fn main() -> int { effect(); input(); return 2; }
        "#;
        let obj = compile_module("m", src).unwrap();
        let helper = compile_module("h", "fn effect() -> int { output(9); return 0; }").unwrap();
        let unit = link_objects(vec![obj, helper]).unwrap();
        let main = unit.program.find_routine("main").unwrap();
        let mut body = unit.bodies[main.index()].clone();
        optimize(&mut body);
        let kinds: Vec<bool> = body
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .map(Instr::has_side_effects)
            .collect();
        assert_eq!(kinds.iter().filter(|&&k| k).count(), 2, "call + input stay");
    }

    #[test]
    fn loops_survive_optimization() {
        let mut body = body_of(
            "fn main() -> int { var i: int = 0; var s: int = 0; while (i < input()) { s = s + i; i = i + 1; } return s; }",
        );
        optimize(&mut body);
        // The loop's backedge must still exist.
        let has_branch = body
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. }));
        assert!(has_branch);
    }

    #[test]
    fn copy_chains_collapse() {
        let mut body = RoutineBody::new();
        let a = body.new_vreg();
        let b = body.new_vreg();
        let c = body.new_vreg();
        let mut blk = BlockData::new(Terminator::Return(Some(c)));
        blk.instrs.push(Instr::Const {
            dst: a,
            value: Const::I(5),
        });
        blk.instrs.push(Instr::Mov { dst: b, src: a });
        blk.instrs.push(Instr::Mov { dst: c, src: b });
        body.blocks.push(blk);
        optimize(&mut body);
        // All three become constants; DCE keeps only c's def (used by
        // the return).
        assert!(body.blocks[0]
            .instrs
            .iter()
            .all(|i| matches!(i, Instr::Const { .. })));
        assert_eq!(body.blocks[0].instrs.len(), 1);
    }
}

#[cfg(test)]
mod count_tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;

    fn body_of(src: &str) -> RoutineBody {
        let obj = compile_module("m", src).unwrap();
        let unit = link_objects(vec![obj]).unwrap();
        let main = unit.program.find_routine("main").unwrap();
        unit.bodies[main.index()].clone()
    }

    #[test]
    fn counts_follow_blocks_through_unreachable_removal() {
        // A constant branch leaves one arm unreachable; the surviving
        // blocks must keep their counts under the renumbering.
        let mut body = body_of(
            r#"
            fn main() -> int {
                var acc: int = 0;
                if (1 == 2) { acc = 111; } else { acc = 222; }
                var i: int = 0;
                while (i < 3) { acc = acc + i; i = i + 1; }
                return acc;
            }
            "#,
        );
        // Tag each original block with a distinguishable count.
        let mut counts: Vec<u64> = (0..body.blocks.len() as u64).map(|i| 1000 + i).collect();
        let n_before = body.blocks.len();
        optimize_with_counts(&mut body, Some(&mut counts));
        assert!(body.blocks.len() < n_before, "something was removed/merged");
        assert_eq!(
            counts.len(),
            body.blocks.len(),
            "counts vector tracks the block vector"
        );
        // The entry keeps its original tag.
        assert_eq!(counts[0], 1000);
        // Every surviving count is one of the original tags (no
        // invented values).
        for &c in &counts {
            assert!(
                (1000..1000 + n_before as u64).contains(&c),
                "bogus count {c}"
            );
        }
    }

    #[test]
    fn merging_preserves_loop_structure_counts() {
        let mut body =
            body_of("fn main() -> int { var i: int = 0; while (i < 9) { i = i + 1; } return i; }");
        let mut counts: Vec<u64> = vec![1, 10, 9, 1, 1, 1][..body.blocks.len().min(6)].to_vec();
        counts.resize(body.blocks.len(), 1);
        optimize_with_counts(&mut body, Some(&mut counts));
        assert_eq!(counts.len(), body.blocks.len());
        // The loop survives: some block still has the hot count.
        assert!(counts.contains(&10) || counts.contains(&9));
    }

    #[test]
    fn optimize_without_counts_is_equivalent_code() {
        let make = || {
            body_of("fn main() -> int { var a: int = 2 * 3; if (a == 6) { return a; } return 0; }")
        };
        let mut with = make();
        let mut counts = vec![1; with.blocks.len()];
        optimize_with_counts(&mut with, Some(&mut counts));
        let mut without = make();
        optimize(&mut without);
        assert_eq!(with, without, "count maintenance must not affect code");
    }
}
