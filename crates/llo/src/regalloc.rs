//! Liveness analysis and linear-scan register allocation.
//!
//! Virtual registers are routine-scoped and non-SSA; liveness is a
//! classical backward bit-vector problem. Its working set is
//! O(blocks × vregs) — the reason "LLO's memory requirements increase
//! quadratically as the sizes of the routines it processes are
//! increased" (Figure 4 caption) — and [`AllocResult::work_bytes`]
//! reports it so the memory experiments can plot LLO alongside HLO.

use crate::layout::order_blocks;
use cmo_ir::{Block, RoutineBody};
use cmo_vm::Reg;

/// Number of registers available to the allocator; the rest of the
/// file ([`NUM_SCRATCH`] of them) are reserved as spill scratch.
pub const NUM_ALLOCATABLE: u8 = 24;
/// Scratch registers reserved for spill reloads and call marshalling.
pub const NUM_SCRATCH: u8 = 8;
/// Maximum call arity the backend supports (one scratch register per
/// potentially-spilled argument).
pub const MAX_ARGS: usize = NUM_SCRATCH as usize;

/// Where a virtual register lives at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register.
    Reg(Reg),
    /// A frame slot (relative index among spill slots; the emitter
    /// offsets it past the locals area).
    Spill(u32),
}

/// The allocation for one routine.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// Location of each virtual register (indexed by vreg).
    pub locs: Vec<Loc>,
    /// Number of spill slots used.
    pub spill_slots: u32,
    /// Block emission order used for linearization.
    pub order: Vec<Block>,
    /// Peak allocator working memory in bytes (liveness bit vectors
    /// plus interval tables).
    pub work_bytes: usize,
}

struct BitMatrix {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    fn get(&self, row: usize, col: usize) -> bool {
        self.bits[row * self.words_per_row + col / 64] & (1 << (col % 64)) != 0
    }

    fn union_row_from(&mut self, row: usize, other: &BitMatrix, other_row: usize) -> bool {
        let mut changed = false;
        for w in 0..self.words_per_row {
            let add = other.bits[other_row * other.words_per_row + w];
            let cell = &mut self.bits[row * self.words_per_row + w];
            let new = *cell | add;
            changed |= new != *cell;
            *cell = new;
        }
        changed
    }

    fn bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Runs liveness + linear scan for `body`, linearized in `order`
/// (pass the layout order so live ranges match emission order).
#[must_use]
pub fn allocate(body: &RoutineBody, order: &[Block]) -> AllocResult {
    let n_blocks = body.blocks.len();
    let n_vregs = body.n_vregs as usize;

    // use[b] = read before written in b; def[b] = written in b.
    let mut use_m = BitMatrix::new(n_blocks, n_vregs);
    let mut def_m = BitMatrix::new(n_blocks, n_vregs);
    let mut uses_buf = Vec::new();
    for (b, block) in body.blocks.iter().enumerate() {
        for instr in &block.instrs {
            uses_buf.clear();
            instr.uses_into(&mut uses_buf);
            for &u in &uses_buf {
                if !def_m.get(b, u.index()) {
                    use_m.set(b, u.index());
                }
            }
            if let Some(d) = instr.def() {
                def_m.set(b, d.index());
            }
        }
        if let Some(u) = block.term.use_reg() {
            if !def_m.get(b, u.index()) {
                use_m.set(b, u.index());
            }
        }
    }

    // Backward iterative live-in/live-out.
    let mut live_in = BitMatrix::new(n_blocks, n_vregs);
    let mut live_out = BitMatrix::new(n_blocks, n_vregs);
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n_blocks).rev() {
            for succ in body.blocks[b].term.successors() {
                changed |= live_out.union_row_from(b, &live_in, succ.index());
            }
            // in[b] = use[b] ∪ (out[b] − def[b])
            changed |= live_in.union_row_from(b, &use_m, b);
            changed |= {
                let mut c = false;
                for w in 0..live_in.words_per_row {
                    let add = live_out.bits[b * live_out.words_per_row + w]
                        & !def_m.bits[b * def_m.words_per_row + w];
                    let cell = &mut live_in.bits[b * live_in.words_per_row + w];
                    let new = *cell | add;
                    c |= new != *cell;
                    *cell = new;
                }
                c
            };
        }
    }

    // Linear positions in emission order: each block occupies
    // [start, start + len + 1] (terminator gets its own position).
    let mut block_start = vec![0usize; n_blocks];
    let mut block_end = vec![0usize; n_blocks];
    let mut pos = 0usize;
    for &b in order {
        block_start[b.index()] = pos;
        pos += body.blocks[b.index()].instrs.len() + 1;
        block_end[b.index()] = pos - 1;
    }

    // Intervals.
    const UNSET: usize = usize::MAX;
    let mut start = vec![UNSET; n_vregs];
    let mut end = vec![0usize; n_vregs];
    let touch = |v: usize, p: usize, start: &mut Vec<usize>, end: &mut Vec<usize>| {
        if start[v] == UNSET || p < start[v] {
            start[v] = p;
        }
        if p > end[v] {
            end[v] = p;
        }
    };
    for &b in order {
        let bi = b.index();
        for v in 0..n_vregs {
            if live_in.get(bi, v) {
                touch(v, block_start[bi], &mut start, &mut end);
            }
            if live_out.get(bi, v) {
                touch(v, block_end[bi], &mut start, &mut end);
            }
        }
        let mut p = block_start[bi];
        for instr in &body.blocks[bi].instrs {
            uses_buf.clear();
            instr.uses_into(&mut uses_buf);
            for &u in &uses_buf {
                touch(u.index(), p, &mut start, &mut end);
            }
            if let Some(d) = instr.def() {
                touch(d.index(), p, &mut start, &mut end);
            }
            p += 1;
        }
        if let Some(u) = body.blocks[bi].term.use_reg() {
            touch(u.index(), p, &mut start, &mut end);
        }
    }

    // Linear scan (Poletto–Sarkar).
    let mut intervals: Vec<usize> = (0..n_vregs).filter(|&v| start[v] != UNSET).collect();
    intervals.sort_by_key(|&v| (start[v], v));
    let mut locs = vec![Loc::Reg(Reg(0)); n_vregs];
    let mut active: Vec<usize> = Vec::new(); // vregs, sorted by end
    let mut free: Vec<u8> = (0..NUM_ALLOCATABLE).rev().collect();
    let mut next_spill = 0u32;
    for &v in &intervals {
        // Expire.
        let mut i = 0;
        while i < active.len() {
            let a = active[i];
            if end[a] < start[v] {
                if let Loc::Reg(r) = locs[a] {
                    free.push(r.0);
                }
                active.remove(i);
            } else {
                i += 1;
            }
        }
        if let Some(r) = free.pop() {
            locs[v] = Loc::Reg(Reg(r));
            let at = active
                .binary_search_by(|&a| end[a].cmp(&end[v]).then(a.cmp(&v)))
                .unwrap_or_else(|e| e);
            active.insert(at, v);
        } else {
            // Spill whichever of (current, furthest active) ends last.
            let last = *active.last().expect("active nonempty when no free regs");
            if end[last] > end[v] {
                locs[v] = locs[last];
                locs[last] = Loc::Spill(next_spill);
                next_spill += 1;
                active.pop();
                let at = active
                    .binary_search_by(|&a| end[a].cmp(&end[v]).then(a.cmp(&v)))
                    .unwrap_or_else(|e| e);
                active.insert(at, v);
            } else {
                locs[v] = Loc::Spill(next_spill);
                next_spill += 1;
            }
        }
    }

    let work_bytes = use_m.bytes()
        + def_m.bytes()
        + live_in.bytes()
        + live_out.bytes()
        + n_vregs * 2 * std::mem::size_of::<usize>()
        + n_blocks * 2 * std::mem::size_of::<usize>();

    AllocResult {
        locs,
        spill_slots: next_spill,
        order: order.to_vec(),
        work_bytes,
    }
}

/// Convenience: allocation with a fresh layout order.
#[must_use]
pub fn allocate_default(body: &RoutineBody) -> AllocResult {
    let order = order_blocks(body, None);
    allocate(body, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;

    fn body_of(src: &str) -> RoutineBody {
        let obj = compile_module("m", src).unwrap();
        let unit = link_objects(vec![obj]).unwrap();
        let main = unit.program.find_routine("main").unwrap();
        unit.bodies[main.index()].clone()
    }

    #[test]
    fn small_routine_needs_no_spills() {
        let body = body_of("fn main() -> int { var a: int = 1; return a + 2; }");
        let alloc = allocate_default(&body);
        assert_eq!(alloc.spill_slots, 0);
    }

    #[test]
    fn distinct_live_values_get_distinct_registers() {
        // A long chain of sums keeps many values live at once... but
        // frontend lowering consumes temps eagerly; build a case where
        // all operands stay live to the end.
        let n = 10;
        let mut expr = String::from("x0");
        let mut decls = String::new();
        for i in 0..n {
            decls.push_str(&format!("var x{i}: int = input();\n"));
            if i > 0 {
                expr = format!("({expr} + x{i})");
            }
        }
        let src = format!("fn main() -> int {{ {decls} return {expr}; }}");
        let body = body_of(&src);
        let alloc = allocate_default(&body);
        // Registers used at overlapping positions must differ.
        let mut seen = std::collections::HashSet::new();
        for (v, loc) in alloc.locs.iter().enumerate() {
            if let Loc::Reg(r) = loc {
                assert!(r.0 < NUM_ALLOCATABLE, "vreg {v} got scratch register");
                seen.insert(r.0);
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn pressure_forces_spills() {
        // More simultaneously-live values than allocatable registers.
        let n = NUM_ALLOCATABLE as usize + 8;
        let mut decls = String::new();
        let mut sum = String::from("0");
        for i in 0..n {
            decls.push_str(&format!("var x{i}: int = input();\n"));
            sum = format!("({sum} + x{i} * x{i})");
        }
        // Keeping xi live: reuse them all again after the first sum.
        let src = format!("fn main() -> int {{ {decls} var a: int = {sum}; return a + {sum}; }}");
        let body = body_of(&src);
        let alloc = allocate_default(&body);
        // The frontend lowers through locals (slots), so pressure here
        // comes from expression temps; at minimum the allocator must
        // never hand out scratch registers and must stay consistent.
        for loc in &alloc.locs {
            if let Loc::Reg(r) = loc {
                assert!(r.0 < NUM_ALLOCATABLE);
            }
        }
        assert!(alloc.work_bytes > 0);
    }

    #[test]
    fn loop_carried_values_span_the_loop() {
        let body = body_of(
            "fn main() -> int { var s: int = 0; var i: int = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }",
        );
        let alloc = allocate_default(&body);
        assert_eq!(alloc.locs.len(), body.n_vregs as usize);
    }

    #[test]
    fn work_bytes_grow_superlinearly() {
        let small = body_of("fn main() -> int { return 1; }");
        let mut big_src = String::from("fn main() -> int { var s: int = 0;\n");
        for i in 0..200 {
            big_src.push_str(&format!("if (s < {i}) {{ s = s + {i}; }}\n"));
        }
        big_src.push_str("return s; }");
        let big = body_of(&big_src);
        let a_small = allocate_default(&small);
        let a_big = allocate_default(&big);
        let size_ratio = big.instr_count() as f64 / small.instr_count().max(1) as f64;
        let mem_ratio = a_big.work_bytes as f64 / a_small.work_bytes.max(1) as f64;
        assert!(
            mem_ratio > size_ratio,
            "liveness memory should grow faster than code size ({mem_ratio:.1} vs {size_ratio:.1})"
        );
    }
}
