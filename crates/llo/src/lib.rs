#![warn(missing_docs)]
//! The low-level optimizer (LLO) and code generator.
//!
//! In the paper's pipeline (§3, Figure 2) LLO is the "sophisticated and
//! mature intraprocedural optimizer, handling all optimizations that
//! require detailed knowledge of the machine architecture, such as
//! register allocation and scheduling". This reproduction's LLO
//! performs, per routine:
//!
//! 1. local optimization on the IL ([`opt`]): per-block constant
//!    folding and propagation (including through local scalars), copy
//!    propagation, global dead-code elimination, redundant-branch
//!    elimination, and unreachable-block removal;
//! 2. basic-block layout ([`layout`]): profile-guided chain formation
//!    placing hot successors on the fall-through path (+P), or source
//!    order without profile data;
//! 3. liveness analysis and linear-scan register allocation
//!    ([`regalloc`]) with spill code — register pressure is real, so
//!    over-aggressive inlining costs spills, reproducing the tension
//!    the paper's inlining heuristics manage;
//! 4. machine-code emission ([`lower_routine`]) with optional profile
//!    probes (`+I`), producing relocatable per-routine code the linker
//!    concatenates.
//!
//! LLO working memory genuinely grows super-linearly with routine size
//! (liveness is O(blocks × vregs)); [`LoweredRoutine::llo_work_bytes`]
//! reports it, reproducing the LLO curve discussed under Figure 4.

pub mod layout;
mod lower;
pub mod opt;
pub mod regalloc;

pub use lower::{
    lower_routine, shape_of, GlobalLayout, LloOptions, LoweredRoutine, OptEffort, OptEffortOpt,
};

#[cfg(test)]
mod tests {
    use crate::lower::{lower_routine, GlobalLayout, LloOptions};
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;

    #[test]
    fn end_to_end_lowering_smoke() {
        let obj = compile_module(
            "m",
            r#"
            global acc: int = 0;
            fn main() -> int {
                var i: int = 0;
                while (i < 5) { acc = acc + i; i = i + 1; }
                return acc;
            }
            "#,
        )
        .unwrap();
        let unit = link_objects(vec![obj]).unwrap();
        let layout = GlobalLayout::new(&unit.program);
        let main = unit.program.find_routine("main").unwrap();
        let lowered = lower_routine(
            main,
            &unit.bodies[main.index()],
            &unit.program,
            &layout,
            &LloOptions::default(),
        );
        assert!(!lowered.code.is_empty());
        assert!(lowered.frame_slots >= 1);
        assert_eq!(lowered.name, "main");
    }
}
