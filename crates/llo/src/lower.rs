//! Machine-code emission.

use crate::layout::order_blocks;
use crate::opt;
use crate::regalloc::{allocate, Loc, MAX_ARGS, NUM_ALLOCATABLE};
use cmo_ir::{
    Block, GlobalId, Instr, MemBase, Program, RoutineBody, RoutineId, Terminator, UnOp, VReg,
};
use cmo_profile::{ProbeKind, RoutineShape};
use cmo_vm::{MInstr, Reg};
use std::collections::HashMap;

/// How hard LLO works, mirroring the HP-UX option levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptEffort {
    /// `+O1`: code generation and register allocation only.
    O1,
    /// `+O2` and above: full local optimization first.
    O2,
}

/// Options for lowering one routine.
#[derive(Debug, Clone, Default)]
pub struct LloOptions {
    /// Optimization effort.
    pub effort: OptEffortOpt,
    /// Insert profile probes (`+I`).
    pub instrument: bool,
    /// Execution count per block of this body, for layout (`+P`).
    /// Supplied by the driver from the profile database, or maintained
    /// by HLO through its transformations.
    pub block_counts: Option<Vec<u64>>,
}

/// Newtype default wrapper so `LloOptions::default()` is `O2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptEffortOpt(pub OptEffort);

impl Default for OptEffortOpt {
    fn default() -> Self {
        OptEffortOpt(OptEffort::O2)
    }
}

/// Flat addresses for global variables in machine memory.
#[derive(Debug, Clone, Default)]
pub struct GlobalLayout {
    addr: Vec<u32>,
    len: Vec<u32>,
    total: u32,
}

impl GlobalLayout {
    /// Lays out every global of `program` in id order.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut addr = Vec::with_capacity(program.globals().len());
        let mut len = Vec::with_capacity(program.globals().len());
        let mut next = 0u32;
        for g in program.globals() {
            addr.push(next);
            let slots = g.ty.slots();
            len.push(slots);
            next += slots;
        }
        GlobalLayout {
            addr,
            len,
            total: next,
        }
    }

    /// Flat cell address of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn addr(&self, g: GlobalId) -> u32 {
        self.addr[g.index()]
    }

    /// Cell count of `g` (1 for scalars).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn len(&self, g: GlobalId) -> u32 {
        self.len[g.index()]
    }

    /// Returns `true` when the program has no globals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total cells of global memory.
    #[must_use]
    pub fn total_cells(&self) -> u32 {
        self.total
    }
}

/// The output of lowering one routine: relocatable code (jump targets
/// are routine-relative; call operands are program [`RoutineId`]s) plus
/// metadata for the linker.
#[derive(Debug, Clone)]
pub struct LoweredRoutine {
    /// Routine name.
    pub name: String,
    /// Code with routine-relative branch targets.
    pub code: Vec<MInstr>,
    /// Frame slots (locals + arrays + spills).
    pub frame_slots: u32,
    /// Probe descriptors in emission order (empty unless instrumented).
    pub probes: Vec<ProbeKind>,
    /// Structural shape after optimization, for profile correlation.
    pub shape: RoutineShape,
    /// Peak LLO working memory for this routine (liveness tables).
    pub llo_work_bytes: usize,
    /// IL instructions after local optimization.
    pub il_after_opt: u32,
}

/// Computes the structural fingerprint used to detect stale profiles
/// (§6.2): block count, site count, and a hash over per-block
/// instruction counts and successor lists.
#[must_use]
pub fn shape_of(body: &RoutineBody) -> RoutineShape {
    RoutineShape {
        n_blocks: body.blocks.len() as u32,
        n_sites: body.next_site,
        fingerprint: body.fingerprint(),
    }
}

struct Emitter<'a> {
    code: Vec<MInstr>,
    locs: &'a [Loc],
    /// Frame slot of each local's base.
    local_base: Vec<u32>,
    /// First frame slot of the spill area.
    spill_base: u32,
    /// Fixups: (code index, target block) to patch to block offsets.
    fixups: Vec<(usize, Block)>,
    scratch_next: u8,
}

impl Emitter<'_> {
    fn scratch(&mut self) -> Reg {
        let r = Reg(NUM_ALLOCATABLE + self.scratch_next);
        self.scratch_next = (self.scratch_next + 1) % MAX_ARGS as u8;
        r
    }

    /// Materializes vreg `v` into a register, loading from its spill
    /// slot if needed.
    fn read(&mut self, v: VReg) -> Reg {
        match self.locs[v.index()] {
            Loc::Reg(r) => r,
            Loc::Spill(s) => {
                let r = self.scratch();
                self.code.push(MInstr::LdSlot {
                    dst: r,
                    slot: self.spill_base + s,
                });
                r
            }
        }
    }

    /// Returns the register to compute vreg `v` into; call
    /// [`Emitter::finish_write`] afterwards to store spills.
    fn write_reg(&mut self, v: VReg) -> Reg {
        match self.locs[v.index()] {
            Loc::Reg(r) => r,
            Loc::Spill(_) => self.scratch(),
        }
    }

    fn finish_write(&mut self, v: VReg, r: Reg) {
        if let Loc::Spill(s) = self.locs[v.index()] {
            self.code.push(MInstr::StSlot {
                slot: self.spill_base + s,
                src: r,
            });
        }
    }
}

/// Lowers one routine to machine code.
///
/// The body must be fully resolved (post IL-link). The returned code is
/// relocatable: `Jmp`/`Br` targets are relative to the routine start,
/// and `Call` operands are program routine ids the linker maps to
/// image indices.
///
/// # Panics
///
/// Panics if a call passes more than [`MAX_ARGS`] arguments (the MLC
/// frontend enforces this bound) or if the body contains unresolved
/// references.
#[must_use]
pub fn lower_routine(
    rid: RoutineId,
    body: &RoutineBody,
    program: &Program,
    globals: &GlobalLayout,
    options: &LloOptions,
) -> LoweredRoutine {
    let meta = program.routine(rid);
    let name = program.name(meta.name).to_owned();

    // 1. Local optimization on a working copy. Block counts arrive in
    //    the pre-optimization (frontend/HLO) block-id domain and are
    //    maintained through every structural change. Instrumented
    //    builds skip IL optimization entirely so probes map 1:1 onto
    //    that stable domain — this is what keeps the profile database
    //    correlated across option levels (§3, §6.2).
    let mut body = body.clone();
    let mut counts = options.block_counts.as_deref().map(|c| {
        let mut v = c.to_vec();
        v.resize(body.blocks.len(), 0);
        v
    });
    if options.effort.0 >= OptEffort::O2 && !options.instrument {
        opt::optimize_with_counts(&mut body, counts.as_mut());
    }
    let shape = shape_of(&body);

    // 2. Layout.
    let order = order_blocks(&body, counts.as_deref());

    // 3. Register allocation.
    let alloc = allocate(&body, &order);

    // 4. Frame layout: locals first (arrays get contiguous slots),
    //    spill area after.
    let mut local_base = Vec::with_capacity(body.locals.len());
    let mut next_slot = 0u32;
    for decl in &body.locals {
        local_base.push(next_slot);
        next_slot += decl.ty.slots();
    }
    let spill_base = next_slot;
    let frame_slots = next_slot + alloc.spill_slots;

    let mut e = Emitter {
        code: Vec::with_capacity(body.instr_count() * 2),
        locs: &alloc.locs,
        local_base,
        spill_base,
        fixups: Vec::new(),
        scratch_next: 0,
    };
    let mut probes: Vec<ProbeKind> = Vec::new();

    // Prologue: copy incoming argument registers into parameter slots.
    let arity = meta.sig.arity();
    assert!(arity <= MAX_ARGS, "arity {arity} exceeds backend limit");
    for i in 0..arity {
        e.code.push(MInstr::StSlot {
            slot: e.local_base[i],
            src: Reg(i as u8),
        });
    }

    let mut block_offset: HashMap<Block, u32> = HashMap::new();
    for (pos, &b) in order.iter().enumerate() {
        block_offset.insert(b, e.code.len() as u32);
        if options.instrument {
            probes.push(ProbeKind::Block(b.index() as u32));
            e.code.push(MInstr::Probe {
                id: (probes.len() - 1) as u32,
            });
        }
        for instr in &body.blocks[b.index()].instrs {
            e.scratch_next = 0;
            emit_instr(&mut e, instr, globals, options.instrument, &mut probes);
        }
        e.scratch_next = 0;
        let next = order.get(pos + 1).copied();
        match &body.blocks[b.index()].term {
            Terminator::Jump(t) => {
                if next != Some(*t) {
                    e.fixups.push((e.code.len(), *t));
                    e.code.push(MInstr::Jmp { target: 0 });
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = e.read(*cond);
                if next == Some(*else_bb) {
                    e.fixups.push((e.code.len(), *then_bb));
                    e.code.push(MInstr::Br { cond: c, target: 0 });
                } else if next == Some(*then_bb) {
                    let inv = e.scratch();
                    e.code.push(MInstr::Un {
                        op: UnOp::Not,
                        dst: inv,
                        src: c,
                    });
                    e.fixups.push((e.code.len(), *else_bb));
                    e.code.push(MInstr::Br {
                        cond: inv,
                        target: 0,
                    });
                } else {
                    e.fixups.push((e.code.len(), *then_bb));
                    e.code.push(MInstr::Br { cond: c, target: 0 });
                    e.fixups.push((e.code.len(), *else_bb));
                    e.code.push(MInstr::Jmp { target: 0 });
                }
            }
            Terminator::Return(v) => {
                let value = v.map(|r| e.read(r));
                e.code.push(MInstr::Ret { value });
            }
        }
    }

    // Patch branch targets.
    for (idx, target) in e.fixups.clone() {
        let off = block_offset[&target];
        match &mut e.code[idx] {
            MInstr::Jmp { target } | MInstr::Br { target, .. } => *target = off,
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }

    LoweredRoutine {
        name,
        code: e.code,
        frame_slots,
        probes,
        shape,
        llo_work_bytes: alloc.work_bytes,
        il_after_opt: body.instr_count() as u32,
    }
}

fn emit_instr(
    e: &mut Emitter<'_>,
    instr: &Instr,
    globals: &GlobalLayout,
    instrument: bool,
    probes: &mut Vec<ProbeKind>,
) {
    match instr {
        Instr::Const { dst, value } => {
            let r = e.write_reg(*dst);
            match value {
                cmo_ir::Const::I(v) => e.code.push(MInstr::LdImm { dst: r, value: *v }),
                cmo_ir::Const::F(v) => e.code.push(MInstr::LdImmF { dst: r, value: *v }),
            }
            e.finish_write(*dst, r);
        }
        Instr::Bin { dst, op, lhs, rhs } => {
            let a = e.read(*lhs);
            let b = e.read(*rhs);
            let r = e.write_reg(*dst);
            e.code.push(MInstr::Bin {
                op: *op,
                dst: r,
                lhs: a,
                rhs: b,
            });
            e.finish_write(*dst, r);
        }
        Instr::Un { dst, op, src } => {
            let s = e.read(*src);
            let r = e.write_reg(*dst);
            e.code.push(MInstr::Un {
                op: *op,
                dst: r,
                src: s,
            });
            e.finish_write(*dst, r);
        }
        Instr::Mov { dst, src } => {
            let s = e.read(*src);
            let r = e.write_reg(*dst);
            if s != r {
                e.code.push(MInstr::Mov { dst: r, src: s });
            }
            e.finish_write(*dst, r);
        }
        Instr::LoadLocal { dst, local } => {
            let slot = e.local_base[local.index()];
            let r = e.write_reg(*dst);
            e.code.push(MInstr::LdSlot { dst: r, slot });
            e.finish_write(*dst, r);
        }
        Instr::StoreLocal { local, src } => {
            let s = e.read(*src);
            let slot = e.local_base[local.index()];
            e.code.push(MInstr::StSlot { slot, src: s });
        }
        Instr::LoadGlobal { dst, global } => {
            let g = global.id();
            let r = e.write_reg(*dst);
            e.code.push(MInstr::LdGlobal {
                dst: r,
                addr: globals.addr(g),
            });
            e.finish_write(*dst, r);
        }
        Instr::StoreGlobal { global, src } => {
            let s = e.read(*src);
            e.code.push(MInstr::StGlobal {
                addr: globals.addr(global.id()),
                src: s,
            });
        }
        Instr::LoadElem { dst, base, index } => {
            let i = e.read(*index);
            let r = e.write_reg(*dst);
            match base {
                MemBase::Local(l) => e.code.push(MInstr::LdSlotElem {
                    dst: r,
                    base_slot: e.local_base[l.index()],
                    len: elem_len_local(e, *l),
                    index: i,
                }),
                MemBase::Global(g) => {
                    let g = g.id();
                    e.code.push(MInstr::LdGlobalElem {
                        dst: r,
                        base: globals.addr(g),
                        len: globals.len(g),
                        index: i,
                    });
                }
            }
            e.finish_write(*dst, r);
        }
        Instr::StoreElem { base, index, src } => {
            let i = e.read(*index);
            let s = e.read(*src);
            match base {
                MemBase::Local(l) => e.code.push(MInstr::StSlotElem {
                    base_slot: e.local_base[l.index()],
                    len: elem_len_local(e, *l),
                    index: i,
                    src: s,
                }),
                MemBase::Global(g) => {
                    let g = g.id();
                    e.code.push(MInstr::StGlobalElem {
                        base: globals.addr(g),
                        len: globals.len(g),
                        index: i,
                        src: s,
                    });
                }
            }
        }
        Instr::Call {
            dst,
            callee,
            args,
            site,
        } => {
            assert!(args.len() <= MAX_ARGS, "call arity exceeds backend limit");
            if instrument {
                probes.push(ProbeKind::Site(site.0));
                e.code.push(MInstr::Probe {
                    id: (probes.len() - 1) as u32,
                });
            }
            let arg_regs: Vec<Reg> = args.iter().map(|a| e.read(*a)).collect();
            let r = dst.map(|d| e.write_reg(d));
            e.code.push(MInstr::Call {
                routine: callee.id().0,
                args: arg_regs,
                dst: r,
            });
            if let (Some(d), Some(r)) = (dst, r) {
                e.finish_write(*d, r);
            }
        }
        Instr::Input { dst } => {
            let r = e.write_reg(*dst);
            e.code.push(MInstr::Input { dst: r });
            e.finish_write(*dst, r);
        }
        Instr::Output { src } => {
            let s = e.read(*src);
            e.code.push(MInstr::Output { src: s });
        }
    }
}

/// Array length of a local, recovered from the frame layout (the next
/// local's base minus this one's — or measured directly).
fn elem_len_local(e: &Emitter<'_>, l: cmo_ir::Local) -> u32 {
    let base = e.local_base[l.index()];
    let next = e
        .local_base
        .get(l.index() + 1)
        .copied()
        .unwrap_or(e.spill_base);
    next - base
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;
    use cmo_vm::{run, MRoutineInfo, MachineImage, RunConfig};

    /// Minimal single-module "linker" for unit tests: lowers every
    /// routine and concatenates in id order.
    fn build_image(src: &str, options: &LloOptions) -> MachineImage {
        let obj = compile_module("m", src).unwrap();
        let unit = link_objects(vec![obj]).unwrap();
        let globals = GlobalLayout::new(&unit.program);
        let mut image = MachineImage {
            globals: vec![0; globals.total_cells() as usize],
            ..MachineImage::default()
        };
        // Fill initial global memory.
        for (gid, meta) in unit.program.globals().iter().enumerate() {
            let init = &unit.symtabs[meta.module.index()].globals[meta.slot as usize].init;
            let base = globals.addr(cmo_ir::GlobalId::from_index(gid)) as usize;
            match init {
                cmo_ir::GlobalInit::Zero => {}
                cmo_ir::GlobalInit::Scalar(cmo_ir::Const::I(v)) => image.globals[base] = *v as u64,
                cmo_ir::GlobalInit::Scalar(cmo_ir::Const::F(v)) => {
                    image.globals[base] = v.to_bits()
                }
                cmo_ir::GlobalInit::IntArray(vs) => {
                    for (i, v) in vs.iter().enumerate() {
                        image.globals[base + i] = *v as u64;
                    }
                }
                cmo_ir::GlobalInit::FloatArray(vs) => {
                    for (i, v) in vs.iter().enumerate() {
                        image.globals[base + i] = v.to_bits();
                    }
                }
            }
        }
        for (i, body) in unit.bodies.iter().enumerate() {
            let rid = RoutineId::from_index(i);
            let lowered = lower_routine(rid, body, &unit.program, &globals, options);
            let base = image.code.len() as u32;
            let probe_base = image.probes.len() as u32;
            let code_len = lowered.code.len() as u32;
            for mut mi in lowered.code {
                match &mut mi {
                    MInstr::Jmp { target } | MInstr::Br { target, .. } => *target += base,
                    MInstr::Probe { id } => *id += probe_base,
                    _ => {}
                }
                image.code.push(mi);
            }
            for kind in lowered.probes {
                image.probes.push(match kind {
                    ProbeKind::Block(b) => cmo_profile::ProbeKey::block(&lowered.name, b),
                    ProbeKind::Site(s) => cmo_profile::ProbeKey::site(&lowered.name, s),
                });
            }
            image.shapes.push((lowered.name.clone(), lowered.shape));
            image.routines.push(MRoutineInfo {
                name: lowered.name,
                entry: base,
                frame_slots: lowered.frame_slots,
                code_len,
            });
        }
        image.entry_routine = unit.program.find_routine("main").unwrap().0;
        image
    }

    const FIB: &str = r#"
        fn fib(n: int) -> int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() -> int {
            return fib(12);
        }
    "#;

    #[test]
    fn fib_computes_correctly() {
        let image = build_image(FIB, &LloOptions::default());
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 144);
        assert!(r.calls > 100);
    }

    #[test]
    fn o1_and_o2_agree_on_results() {
        let src = r#"
            global table: int[8] = [5, 3, 8, 1];
            fn main() -> int {
                var i: int = 0;
                var acc: int = 0;
                while (i < 16) {
                    acc = acc + table[i] * 2 + (3 * 4);
                    i = i + 1;
                }
                output(acc);
                return acc;
            }
        "#;
        let o1 = build_image(
            src,
            &LloOptions {
                effort: OptEffortOpt(OptEffort::O1),
                ..LloOptions::default()
            },
        );
        let o2 = build_image(src, &LloOptions::default());
        let cfg = RunConfig::default();
        let r1 = run(&o1, &[], &cfg).unwrap();
        let r2 = run(&o2, &[], &cfg).unwrap();
        assert_eq!(r1.returned, r2.returned);
        assert_eq!(r1.checksum, r2.checksum);
        assert!(
            r2.cycles < r1.cycles,
            "O2 should be faster: {} vs {}",
            r2.cycles,
            r1.cycles
        );
    }

    #[test]
    fn instrumented_image_counts_blocks_and_sites() {
        let image = build_image(
            FIB,
            &LloOptions {
                instrument: true,
                ..LloOptions::default()
            },
        );
        assert!(image.is_instrumented());
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        let db = cmo_vm::profile_from_run(&image, &r.probe_counts);
        // Every fib entry corresponds to one executed call (main's
        // entry is not a call, and every call targets fib).
        assert_eq!(db.entry_count("fib"), r.calls);
        assert!(db.entry_count("main") == 1);
        // Instrumentation must not change results.
        let plain = build_image(FIB, &LloOptions::default());
        let rp = run(&plain, &[], &RunConfig::default()).unwrap();
        assert_eq!(rp.returned, r.returned);
        assert_eq!(rp.checksum, r.checksum);
        assert!(r.cycles > rp.cycles, "probes cost cycles");
    }

    #[test]
    fn layout_with_counts_reduces_taken_branches() {
        // A loop whose body branch is heavily biased to the `else`
        // side, which source order places badly.
        let src = r#"
            fn main() -> int {
                var i: int = 0;
                var acc: int = 0;
                while (i < 1000) {
                    if (i % 100 == 99) { acc = acc + 100; } else { acc = acc + 1; }
                    i = i + 1;
                }
                return acc;
            }
        "#;
        // First, instrument and run to get real block counts.
        let inst = build_image(
            src,
            &LloOptions {
                instrument: true,
                ..LloOptions::default()
            },
        );
        let r = run(&inst, &[], &RunConfig::default()).unwrap();
        let db = cmo_vm::profile_from_run(&inst, &r.probe_counts);
        let prof = db.routine("main").unwrap();
        // Now rebuild with counts-guided layout.
        let plain = build_image(src, &LloOptions::default());
        let guided = build_image(
            src,
            &LloOptions {
                block_counts: Some(prof.blocks.clone()),
                ..LloOptions::default()
            },
        );
        let cfg = RunConfig::default();
        let rp = run(&plain, &[], &cfg).unwrap();
        let rg = run(&guided, &[], &cfg).unwrap();
        assert_eq!(rp.returned, rg.returned);
        assert!(
            rg.branches_taken < rp.branches_taken,
            "guided {} vs plain {}",
            rg.branches_taken,
            rp.branches_taken
        );
        assert!(rg.cycles <= rp.cycles);
    }

    #[test]
    fn spilled_code_still_computes_correctly() {
        // Force register pressure well past NUM_ALLOCATABLE.
        let n = 40;
        let mut decls = String::new();
        let mut sum = String::from("0");
        for i in 0..n {
            decls.push_str(&format!("var x{i}: int = input();\n"));
            sum = format!("({sum} + x{i})");
        }
        let src = format!("fn main() -> int {{ {decls} var a: int = {sum}; return a + {sum}; }}");
        let image = build_image(&src, &LloOptions::default());
        let input: Vec<i64> = (1..=n as i64).collect();
        let r = run(&image, &input, &RunConfig::default()).unwrap();
        let expect: i64 = (1..=n as i64).sum::<i64>() * 2;
        assert_eq!(r.returned, expect);
    }

    #[test]
    fn shape_changes_when_structure_changes() {
        let a = build_image(FIB, &LloOptions::default());
        let b = build_image(
            "fn fib(n: int) -> int { return n; } fn main() -> int { return fib(12); }",
            &LloOptions::default(),
        );
        assert_ne!(a.shapes[0].1, b.shapes[0].1);
    }

    #[test]
    fn float_programs_compute() {
        let src = r#"
            fn main() -> int {
                var x: float = 1.5;
                var i: int = 0;
                while (i < 20) {
                    x = x * 1.1 + 0.25;
                    i = i + 1;
                }
                if (x > 10.0) { return 1; }
                return 0;
            }
        "#;
        let image = build_image(src, &LloOptions::default());
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 1);
    }
}
