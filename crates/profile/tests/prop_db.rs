//! Property tests on the profile database: persistence is lossless,
//! accumulation is additive, and ranking is a permutation.

use cmo_profile::{ProbeKey, ProfileDb, RoutineShape};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Run {
    routines: Vec<(String, RoutineShape, Vec<u64>, Vec<u64>)>,
}

fn arb_run() -> impl Strategy<Value = Run> {
    proptest::collection::vec(("[a-z]{1,8}", 1u32..6, 0u32..5, any::<u64>()), 1..6).prop_flat_map(
        |metas| {
            let strategies: Vec<_> = metas
                .into_iter()
                .enumerate()
                // A real probe table has one shape per routine name; make
                // generated names unique so the fixture matches that
                // invariant.
                .map(|(i, (name, nb, ns, fp))| (format!("{name}_{i}"), nb, ns, fp))
                .map(|(name, nb, ns, fp)| {
                    let blocks =
                        proptest::collection::vec(0u64..1_000_000, nb as usize..=nb as usize);
                    let sites =
                        proptest::collection::vec(0u64..1_000_000, ns as usize..=ns as usize);
                    (Just(name), Just(nb), Just(ns), Just(fp), blocks, sites)
                })
                .collect();
            strategies.prop_map(|rows| Run {
                routines: rows
                    .into_iter()
                    .map(|(name, nb, ns, fp, blocks, sites)| {
                        (
                            name,
                            RoutineShape {
                                n_blocks: nb,
                                n_sites: ns,
                                fingerprint: fp,
                            },
                            blocks,
                            sites,
                        )
                    })
                    .collect(),
            })
        },
    )
}

fn record(db: &mut ProfileDb, run: &Run) {
    let mut counts = Vec::new();
    let mut shapes = Vec::new();
    for (name, shape, blocks, sites) in &run.routines {
        shapes.push((name.clone(), *shape));
        for (i, &c) in blocks.iter().enumerate() {
            counts.push((ProbeKey::block(name, i as u32), c));
        }
        for (i, &c) in sites.iter().enumerate() {
            counts.push((ProbeKey::site(name, i as u32), c));
        }
    }
    db.record(&counts, &shapes);
}

proptest! {
    #[test]
    fn serialization_round_trips(run in arb_run()) {
        let mut db = ProfileDb::new();
        record(&mut db, &run);
        let back = ProfileDb::from_bytes(&db.to_bytes()).expect("decode");
        prop_assert_eq!(back, db);
    }

    #[test]
    fn two_runs_add(run in arb_run()) {
        let mut once = ProfileDb::new();
        record(&mut once, &run);
        let mut twice = ProfileDb::new();
        record(&mut twice, &run);
        record(&mut twice, &run);
        for (name, _, blocks, sites) in &run.routines {
            for (i, &c) in blocks.iter().enumerate() {
                // Same-named routines in a run may collide; only check
                // when the single-run count matches the input exactly.
                if once.block_count(name, i as u32) == Some(c) {
                    prop_assert_eq!(twice.block_count(name, i as u32), Some(c * 2));
                }
            }
            for (i, &c) in sites.iter().enumerate() {
                if once.site_count(name, i as u32) == Some(c) {
                    prop_assert_eq!(twice.site_count(name, i as u32), Some(c * 2));
                }
            }
        }
    }

    #[test]
    fn ranked_sites_is_a_sorted_permutation(run in arb_run()) {
        let mut db = ProfileDb::new();
        record(&mut db, &run);
        let ranked = db.ranked_sites();
        // Sorted by count descending.
        for w in ranked.windows(2) {
            prop_assert!(w[0].2 >= w[1].2);
        }
        // Every entry is a real site with the recorded count.
        for (name, site, count) in &ranked {
            prop_assert_eq!(db.site_count(name, *site), Some(*count));
        }
    }

    #[test]
    fn corrupt_db_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = ProfileDb::from_bytes(&bytes);
    }

    #[test]
    fn merge_never_loses_routines(a in arb_run(), b in arb_run()) {
        let mut da = ProfileDb::new();
        record(&mut da, &a);
        let mut db_ = ProfileDb::new();
        record(&mut db_, &b);
        let names_before: Vec<String> = da
            .iter()
            .map(|(n, _)| n.to_owned())
            .chain(db_.iter().map(|(n, _)| n.to_owned()))
            .collect();
        da.merge(&db_);
        for n in names_before {
            prop_assert!(da.routine(&n).is_some());
        }
    }
}
