#![warn(missing_docs)]
//! The profile database for profile-based optimization (PBO).
//!
//! When the user compiles with instrumentation (`+I`), counting probes
//! are inserted into every intraprocedural branch and every call (§3).
//! Running the instrumented program generates — or adds to — a profile
//! database, which later compilations consult to drive block layout,
//! inlining heuristics, and selectivity.
//!
//! Profile data is keyed by *names and stable indices*, never by
//! addresses, so the database survives recompilation; §6.2's
//! stale-profile behaviour (benefits "diminish over time" as code
//! diverges) is modeled by shape fingerprints and a fuzzy
//! [`ProfileDb::lookup`] that reports freshness.
//!
//! # Example
//!
//! ```
//! use cmo_profile::{ProbeKey, ProbeKind, ProfileDb, RoutineShape};
//!
//! let mut db = ProfileDb::new();
//! let shape = RoutineShape { n_blocks: 2, n_sites: 1, fingerprint: 77 };
//! db.record(
//!     &[(ProbeKey::block("hot", 0), 1000), (ProbeKey::site("hot", 0), 900)],
//!     &[("hot".to_owned(), shape)],
//! );
//! assert_eq!(db.site_count("hot", 0), Some(900));
//! ```

use cmo_naim::{ContentHash, DecodeError, Decoder, Encoder};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a probe counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProbeKind {
    /// Executions of basic block `n` of the routine.
    Block(u32),
    /// Executions of call site `n` of the routine.
    Site(u32),
}

/// Identity of one counter: routine name plus what is counted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeKey {
    /// The containing routine's name.
    pub routine: String,
    /// What is counted.
    pub kind: ProbeKind,
}

impl ProbeKey {
    /// A block-execution probe.
    #[must_use]
    pub fn block(routine: &str, block: u32) -> Self {
        ProbeKey {
            routine: routine.to_owned(),
            kind: ProbeKind::Block(block),
        }
    }

    /// A call-site probe.
    #[must_use]
    pub fn site(routine: &str, site: u32) -> Self {
        ProbeKey {
            routine: routine.to_owned(),
            kind: ProbeKind::Site(site),
        }
    }
}

impl fmt::Display for ProbeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ProbeKind::Block(b) => write!(f, "{}#bb{b}", self.routine),
            ProbeKind::Site(s) => write!(f, "{}#cs{s}", self.routine),
        }
    }
}

/// A structural fingerprint of a routine, recorded at instrumentation
/// time and compared at optimization time to detect stale profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutineShape {
    /// Number of basic blocks.
    pub n_blocks: u32,
    /// Number of call sites.
    pub n_sites: u32,
    /// Deterministic structure hash (e.g. FNV over per-block
    /// instruction counts and successor lists).
    pub fingerprint: u64,
}

/// How well stored profile data matches the current code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Freshness {
    /// Shape matches exactly: counts are trustworthy.
    Fresh,
    /// Counts exist but the routine changed since profiling; they are
    /// used with reduced confidence (§6.2).
    Stale,
    /// No data for this routine.
    Missing,
}

/// Per-routine profile counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutineProfile {
    /// Block execution counts, indexed by block id at instrumentation
    /// time.
    pub blocks: Vec<u64>,
    /// Call-site execution counts, indexed by call-site id.
    pub sites: Vec<u64>,
    /// Shape at instrumentation time.
    pub shape: RoutineShape,
}

impl RoutineProfile {
    /// Entry count of the routine (executions of block 0).
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.blocks.first().copied().unwrap_or(0)
    }
}

/// A deterministic FNV-1a hash, used for shape fingerprints.
#[must_use]
pub fn fnv1a(bytes: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in bytes {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The profile database.
///
/// Keys are routine names (a [`BTreeMap`], so iteration order is
/// deterministic, per the §6.2 reproducibility discipline). Multiple
/// instrumented runs accumulate into the same database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileDb {
    routines: BTreeMap<String, RoutineProfile>,
    runs: u32,
}

impl ProfileDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instrumented runs accumulated.
    #[must_use]
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Returns `true` if no run has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routines.is_empty()
    }

    /// Records the counters of one instrumented run, adding to any
    /// existing data ("a profile database is generated, or added to, if
    /// data from an earlier run already exists", §3).
    ///
    /// `shapes` carries the instrumentation-time shape of each routine.
    pub fn record(&mut self, counts: &[(ProbeKey, u64)], shapes: &[(String, RoutineShape)]) {
        self.runs += 1;
        for (name, shape) in shapes {
            let entry = self.routines.entry(name.clone()).or_default();
            if entry.shape != *shape {
                // The code changed since the last run: restart counts
                // for this routine at the new shape.
                *entry = RoutineProfile::default();
            }
            entry.shape = *shape;
            entry
                .blocks
                .resize(entry.blocks.len().max(shape.n_blocks as usize), 0);
            entry
                .sites
                .resize(entry.sites.len().max(shape.n_sites as usize), 0);
        }
        for (key, count) in counts {
            let entry = self.routines.entry(key.routine.clone()).or_default();
            match key.kind {
                ProbeKind::Block(b) => {
                    let i = b as usize;
                    if entry.blocks.len() <= i {
                        entry.blocks.resize(i + 1, 0);
                    }
                    entry.blocks[i] = entry.blocks[i].saturating_add(*count);
                }
                ProbeKind::Site(s) => {
                    let i = s as usize;
                    if entry.sites.len() <= i {
                        entry.sites.resize(i + 1, 0);
                    }
                    entry.sites[i] = entry.sites[i].saturating_add(*count);
                }
            }
        }
    }

    /// Looks up profile data for `routine` given its *current* shape,
    /// reporting freshness. Stale data (shape mismatch) is still
    /// returned — consumers decide how much to trust it — except that
    /// counts beyond the current shape are clipped.
    #[must_use]
    pub fn lookup(
        &self,
        routine: &str,
        current: RoutineShape,
    ) -> (Freshness, Option<&RoutineProfile>) {
        match self.routines.get(routine) {
            None => (Freshness::Missing, None),
            Some(p) if p.shape == current => (Freshness::Fresh, Some(p)),
            Some(p) => (Freshness::Stale, Some(p)),
        }
    }

    /// Raw profile entry for `routine`.
    #[must_use]
    pub fn routine(&self, routine: &str) -> Option<&RoutineProfile> {
        self.routines.get(routine)
    }

    /// Block-execution count.
    #[must_use]
    pub fn block_count(&self, routine: &str, block: u32) -> Option<u64> {
        self.routines
            .get(routine)
            .and_then(|p| p.blocks.get(block as usize).copied())
    }

    /// Call-site execution count.
    #[must_use]
    pub fn site_count(&self, routine: &str, site: u32) -> Option<u64> {
        self.routines
            .get(routine)
            .and_then(|p| p.sites.get(site as usize).copied())
    }

    /// Entry count (block 0 executions) of `routine`.
    #[must_use]
    pub fn entry_count(&self, routine: &str) -> u64 {
        self.routines
            .get(routine)
            .map(RoutineProfile::entry_count)
            .unwrap_or(0)
    }

    /// Every call site in the database with its count, ordered by
    /// descending count then by name/site for determinism. This is the
    /// ranking coarse-grained selectivity consumes (§5).
    #[must_use]
    pub fn ranked_sites(&self) -> Vec<(String, u32, u64)> {
        let mut v: Vec<(String, u32, u64)> = Vec::new();
        for (name, p) in &self.routines {
            for (i, &c) in p.sites.iter().enumerate() {
                v.push((name.clone(), i as u32, c));
            }
        }
        v.sort_by(|a, b| {
            b.2.cmp(&a.2)
                .then_with(|| a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        v
    }

    /// Merges another database into this one (e.g. profiles gathered on
    /// several machines).
    pub fn merge(&mut self, other: &ProfileDb) {
        self.runs += other.runs;
        for (name, p) in &other.routines {
            let entry = self.routines.entry(name.clone()).or_default();
            if entry.blocks.is_empty() && entry.sites.is_empty() {
                *entry = p.clone();
                continue;
            }
            if entry.shape != p.shape {
                // Keep whichever side has more runs behind it — here,
                // prefer the incoming data (assumed newer).
                *entry = p.clone();
                continue;
            }
            for (a, b) in entry.blocks.iter_mut().zip(&p.blocks) {
                *a = a.saturating_add(*b);
            }
            for (a, b) in entry.sites.iter_mut().zip(&p.sites) {
                *a = a.saturating_add(*b);
            }
        }
    }

    /// Serializes the database.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(256);
        enc.write_u32(self.runs);
        enc.write_usize(self.routines.len());
        for (name, p) in &self.routines {
            enc.write_str(name);
            enc.write_u32(p.shape.n_blocks);
            enc.write_u32(p.shape.n_sites);
            enc.write_u64(p.shape.fingerprint);
            enc.write_usize(p.blocks.len());
            for &c in &p.blocks {
                enc.write_u64(c);
            }
            enc.write_usize(p.sites.len());
            for &c in &p.sites {
                enc.write_u64(c);
            }
        }
        enc.into_bytes()
    }

    /// Deserializes a database written by [`ProfileDb::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let runs = dec.read_u32()?;
        let n = dec.read_usize()?;
        let mut routines = BTreeMap::new();
        for _ in 0..n {
            let name = dec.read_str()?.to_owned();
            let shape = RoutineShape {
                n_blocks: dec.read_u32()?,
                n_sites: dec.read_u32()?,
                fingerprint: dec.read_u64()?,
            };
            let nb = dec.read_usize()?;
            let mut blocks = Vec::with_capacity(nb.min(1 << 20));
            for _ in 0..nb {
                blocks.push(dec.read_u64()?);
            }
            let ns = dec.read_usize()?;
            let mut sites = Vec::with_capacity(ns.min(1 << 20));
            for _ in 0..ns {
                sites.push(dec.read_u64()?);
            }
            routines.insert(
                name,
                RoutineProfile {
                    blocks,
                    sites,
                    shape,
                },
            );
        }
        Ok(ProfileDb { routines, runs })
    }

    /// Iterates over `(routine name, profile)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RoutineProfile)> {
        self.routines.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Canonical byte encoding of the database's projection onto
    /// `scope` — the *profile slice* a module (and its cross-module
    /// inline/clone candidates) can observe.
    ///
    /// The encoding is a pure function of the stored data inside the
    /// scope, and nothing else:
    ///
    /// * scope names are deduplicated and sorted, so the slice is
    ///   insensitive to the order (or repetition) the caller lists
    ///   routines in;
    /// * only routines *present* in the database are encoded — a scope
    ///   name with no data contributes nothing, so training a brand-new
    ///   routine changes only slices that can see it;
    /// * a present routine contributes its recorded shape and its full
    ///   block/site count vectors, so a counts-all-zero routine is
    ///   distinct from an absent one (zero counts are real data: "this
    ///   ran zero times");
    /// * the run counter is deliberately excluded — a retrain that
    ///   reproduces identical counts must produce identical slices.
    #[must_use]
    pub fn slice_bytes<'a, I>(&self, scope: I) -> Vec<u8>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let names: BTreeSet<&str> = scope.into_iter().collect();
        let present: Vec<(&&str, &RoutineProfile)> = names
            .iter()
            .filter_map(|name| self.routines.get(*name).map(|p| (name, p)))
            .collect();
        let mut enc = Encoder::with_capacity(64 + present.len() * 48);
        enc.write_str("cmo-pslice");
        enc.write_usize(present.len());
        for (name, p) in present {
            enc.write_str(name);
            enc.write_u32(p.shape.n_blocks);
            enc.write_u32(p.shape.n_sites);
            enc.write_u64(p.shape.fingerprint);
            enc.write_usize(p.blocks.len());
            for &c in &p.blocks {
                enc.write_u64(c);
            }
            enc.write_usize(p.sites.len());
            for &c in &p.sites {
                enc.write_u64(c);
            }
        }
        enc.into_bytes()
    }

    /// 128-bit content fingerprint of the profile slice for `scope` —
    /// the same hash family the cache repository uses, so slice
    /// fingerprints compose directly into cache keys.
    #[must_use]
    pub fn slice_fingerprint<'a, I>(&self, scope: I) -> ContentHash
    where
        I: IntoIterator<Item = &'a str>,
    {
        ContentHash::of(&self.slice_bytes(scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(b: u32, s: u32) -> RoutineShape {
        RoutineShape {
            n_blocks: b,
            n_sites: s,
            fingerprint: fnv1a([u64::from(b), u64::from(s)]),
        }
    }

    fn one_run(db: &mut ProfileDb) {
        db.record(
            &[
                (ProbeKey::block("f", 0), 10),
                (ProbeKey::block("f", 1), 7),
                (ProbeKey::site("f", 0), 7),
                (ProbeKey::block("g", 0), 100),
            ],
            &[("f".to_owned(), shape(2, 1)), ("g".to_owned(), shape(1, 0))],
        );
    }

    #[test]
    fn counts_accumulate_across_runs() {
        let mut db = ProfileDb::new();
        one_run(&mut db);
        one_run(&mut db);
        assert_eq!(db.runs(), 2);
        assert_eq!(db.block_count("f", 0), Some(20));
        assert_eq!(db.site_count("f", 0), Some(14));
        assert_eq!(db.entry_count("g"), 200);
    }

    #[test]
    fn shape_change_resets_counts() {
        let mut db = ProfileDb::new();
        one_run(&mut db);
        // f changed shape: 3 blocks now.
        db.record(
            &[(ProbeKey::block("f", 0), 5)],
            &[("f".to_owned(), shape(3, 1))],
        );
        assert_eq!(db.block_count("f", 0), Some(5));
        let (fresh, _) = db.lookup("f", shape(3, 1));
        assert_eq!(fresh, Freshness::Fresh);
        let (stale, data) = db.lookup("f", shape(4, 1));
        assert_eq!(stale, Freshness::Stale);
        assert!(data.is_some());
        assert_eq!(db.lookup("nope", shape(1, 0)).0, Freshness::Missing);
    }

    #[test]
    fn ranked_sites_order_is_deterministic() {
        let mut db = ProfileDb::new();
        db.record(
            &[
                (ProbeKey::site("a", 0), 50),
                (ProbeKey::site("b", 0), 50),
                (ProbeKey::site("b", 1), 500),
            ],
            &[("a".to_owned(), shape(1, 1)), ("b".to_owned(), shape(1, 2))],
        );
        let ranked = db.ranked_sites();
        assert_eq!(ranked[0], ("b".to_owned(), 1, 500));
        // Ties break by name.
        assert_eq!(ranked[1].0, "a");
        assert_eq!(ranked[2].0, "b");
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut db = ProfileDb::new();
        one_run(&mut db);
        let bytes = db.to_bytes();
        let back = ProfileDb::from_bytes(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn corrupt_bytes_error() {
        let mut db = ProfileDb::new();
        one_run(&mut db);
        let mut bytes = db.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(ProfileDb::from_bytes(&bytes).is_err());
    }

    #[test]
    fn merge_adds_matching_shapes() {
        let mut a = ProfileDb::new();
        one_run(&mut a);
        let mut b = ProfileDb::new();
        one_run(&mut b);
        a.merge(&b);
        assert_eq!(a.block_count("f", 0), Some(20));
        assert_eq!(a.runs(), 2);
    }

    #[test]
    fn merge_prefers_incoming_on_shape_conflict() {
        let mut a = ProfileDb::new();
        one_run(&mut a);
        let mut b = ProfileDb::new();
        b.record(
            &[(ProbeKey::block("f", 0), 3)],
            &[("f".to_owned(), shape(5, 2))],
        );
        a.merge(&b);
        assert_eq!(a.block_count("f", 0), Some(3));
        assert_eq!(a.routine("f").unwrap().shape, shape(5, 2));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([1, 2, 4]));
        assert_ne!(fnv1a([]), fnv1a([0]));
    }

    #[test]
    fn probe_key_display() {
        assert_eq!(ProbeKey::block("f", 2).to_string(), "f#bb2");
        assert_eq!(ProbeKey::site("g", 0).to_string(), "g#cs0");
    }

    #[test]
    fn empty_database_slices_are_stable_and_all_lookups_miss() {
        let db = ProfileDb::new();
        assert_eq!(db.lookup("f", shape(2, 1)).0, Freshness::Missing);
        // Every scope projects to the same (empty) slice.
        assert_eq!(
            db.slice_fingerprint(["f", "g"]),
            db.slice_fingerprint(std::iter::empty::<&str>()),
        );
        // ... and that slice is distinct from one with data in scope.
        let mut trained = ProfileDb::new();
        one_run(&mut trained);
        assert_ne!(
            db.slice_fingerprint(["f"]),
            trained.slice_fingerprint(["f"])
        );
    }

    #[test]
    fn routine_added_after_training_changes_only_slices_that_see_it() {
        let mut db = ProfileDb::new();
        one_run(&mut db);
        let before_f = db.slice_fingerprint(["f"]);
        let before_fh = db.slice_fingerprint(["f", "h"]);
        // A later run trains a routine the first run never saw. Before
        // that run, `h` is Missing; its arrival must not disturb slices
        // that cannot observe it.
        assert_eq!(db.lookup("h", shape(1, 0)).0, Freshness::Missing);
        db.record(
            &[(ProbeKey::block("h", 0), 9)],
            &[("h".to_owned(), shape(1, 0))],
        );
        assert_eq!(db.lookup("h", shape(1, 0)).0, Freshness::Fresh);
        assert_eq!(
            db.slice_fingerprint(["f"]),
            before_f,
            "f's slice is blind to h"
        );
        assert_ne!(
            db.slice_fingerprint(["f", "h"]),
            before_fh,
            "a scope seeing h moves"
        );
    }

    #[test]
    fn counts_all_zero_slice_differs_from_absent() {
        let mut zeroed = ProfileDb::new();
        // A routine instrumented but never executed: shape recorded,
        // every counter zero. That is information ("cold"), not absence.
        zeroed.record(&[], &[("f".to_owned(), shape(2, 1))]);
        assert_eq!(zeroed.block_count("f", 0), Some(0));
        assert_eq!(zeroed.lookup("f", shape(2, 1)).0, Freshness::Fresh);
        let absent = ProfileDb::new();
        assert_ne!(
            zeroed.slice_fingerprint(["f"]),
            absent.slice_fingerprint(["f"]),
            "all-zero counts must not collide with no data at all"
        );
    }

    #[test]
    fn slice_fingerprint_is_stable_under_routine_reordering() {
        let mut db = ProfileDb::new();
        one_run(&mut db);
        db.record(
            &[(ProbeKey::block("h", 0), 4)],
            &[("h".to_owned(), shape(1, 0))],
        );
        let a = db.slice_fingerprint(["f", "g", "h"]);
        let b = db.slice_fingerprint(["h", "f", "g"]);
        let c = db.slice_fingerprint(["g", "h", "f", "f", "g"]);
        assert_eq!(a, b, "scope order must not matter");
        assert_eq!(a, c, "duplicate scope names must not matter");
    }

    #[test]
    fn slice_excludes_run_counter_and_out_of_scope_counts() {
        let mut a = ProfileDb::new();
        one_run(&mut a);
        let mut b = ProfileDb::new();
        one_run(&mut b);
        // Extra training that only touches g: f's slice is unmoved even
        // though the database (and its run counter) changed.
        b.record(
            &[(ProbeKey::block("g", 0), 55)],
            &[("g".to_owned(), shape(1, 0))],
        );
        assert_ne!(a.runs(), b.runs());
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.slice_fingerprint(["f"]), b.slice_fingerprint(["f"]));
        assert_ne!(a.slice_fingerprint(["g"]), b.slice_fingerprint(["g"]));
    }

    #[test]
    fn shape_change_in_database_always_moves_the_slice() {
        let mut a = ProfileDb::new();
        one_run(&mut a);
        let before = a.slice_fingerprint(["f"]);
        // Retrain against changed code: record() resets the counts at
        // the new shape, and the slice must move even if the raw count
        // values happen to coincide.
        a.record(
            &[
                (ProbeKey::block("f", 0), 10),
                (ProbeKey::block("f", 1), 7),
                (ProbeKey::site("f", 0), 7),
            ],
            &[("f".to_owned(), shape(3, 1))],
        );
        assert_eq!(a.lookup("f", shape(2, 1)).0, Freshness::Stale);
        assert_ne!(a.slice_fingerprint(["f"]), before);
    }
}
