//! Quickstart: the full CMO+PBO cycle on a small two-module program.
//!
//! Mirrors the paper's developer workflow (§3):
//!  1. compile modules to IL objects (`+O2 +I` instrumented build),
//!  2. run on training input to populate the profile database,
//!  3. rebuild with `+O4 +P` — the linker routes the IL objects
//!     through the cross-module optimizer with profile guidance,
//!  4. compare against the `+O2` baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use cmo::{BuildOptions, Compiler, OptLevel};

const MATHLIB: &str = r#"
    // A "library" module: small routines, perfect inlining fodder.
    global calls_served: int = 0;

    fn clamp(x: int, lo: int, hi: int) -> int {
        calls_served = calls_served + 1;
        if (x < lo) { return lo; }
        if (hi < x) { return hi; }
        return x;
    }

    fn wrap_mix(x: int, mode: int) -> int {
        calls_served = calls_served + 1;
        if (mode == 0) { return (x * 31 + 7) % 65536; }
        return (x * 17 + mode) % 65521;
    }
"#;

const APP: &str = r#"
    extern fn clamp(x: int, lo: int, hi: int) -> int;
    extern fn wrap_mix(x: int, mode: int) -> int;

    fn main() -> int {
        var n: int = input();
        var acc: int = 1;
        var i: int = 0;
        while (i < n) {
            // Hot cross-module calls; `mode` is a compile-time
            // constant, so inlining + propagation specializes wrap_mix.
            acc = wrap_mix(acc + i, 0);
            acc = clamp(acc, 0, 60000);
            i = i + 1;
        }
        output(acc);
        return acc;
    }
"#;

fn main() -> Result<(), cmo::BuildError> {
    let mut cc = Compiler::new();
    cc.add_source("mathlib", MATHLIB)?;
    cc.add_source("app", APP)?;
    let workload: Vec<i64> = vec![50_000];

    // Step 1+2: instrumented build, training run, profile database.
    let instrumented = cc.build(&BuildOptions::instrumented())?;
    let db = instrumented.run_for_profile(&workload)?;
    println!(
        "trained profile: main entry count = {}",
        db.entry_count("main")
    );

    // Step 3: the optimized builds.
    let o2 = cc.build(&BuildOptions::o2())?;
    let best = cc.build(&BuildOptions::new(OptLevel::O4).with_profile_db(db))?;
    println!(
        "+O4 +P did {} cross-module inlines, folded {} global loads",
        best.report.hlo.inlines, best.report.hlo.globals_folded
    );

    // Step 4: compare.
    let r2 = o2.run(&workload)?;
    let rb = best.run(&workload)?;
    assert_eq!(
        r2.checksum, rb.checksum,
        "optimization must preserve results"
    );
    println!(
        "+O2     : {:>12} cycles ({} calls executed)",
        r2.cycles, r2.calls
    );
    println!(
        "+O4 +P  : {:>12} cycles ({} calls executed)",
        rb.cycles, rb.calls
    );
    println!(
        "speedup : {:.2}x (the paper reports up to 1.71x on 5 MLoC apps)",
        r2.cycles as f64 / rb.cycles as f64
    );
    Ok(())
}
