//! `make`-compatible incremental builds and stale profiles (§6.1–6.2).
//!
//! Persistent information lives only in object files and the profile
//! database; editing one module recompiles just that module, and the
//! next optimize-link rebuilds program-wide information from scratch.
//! Profile data recorded before an edit keeps working — the compiler
//! correlates it with the current code and degrades gracefully where
//! the shape changed.
//!
//! Run with `cargo run --release --example incremental_build`.

use cmo::{BuildOptions, OptLevel, Project};

fn main() -> Result<(), cmo::BuildError> {
    let mut project = Project::new();
    project.update_source(
        "engine",
        r#"
        global rate: int = 3;
        fn step(x: int) -> int { return (x * rate + 1) % 9973; }
        "#,
    )?;
    project.update_source(
        "app",
        r#"
        extern fn step(x: int) -> int;
        fn main() -> int {
            var n: int = input();
            var acc: int = 1;
            var i: int = 0;
            while (i < n) { acc = step(acc); i = i + 1; }
            output(acc);
            return acc;
        }
        "#,
    )?;
    println!("initial build: {} frontend compiles", project.recompiles());
    let workload = vec![20_000_i64];

    // Train once.
    let db = project
        .build(&BuildOptions::instrumented())?
        .run_for_profile(&workload)?;

    let v1 = project.build(&BuildOptions::new(OptLevel::O4).with_profile_db(db.clone()))?;
    let r1 = v1.run(&workload)?;
    println!("v1: {} cycles, returned {}", r1.cycles, r1.returned);

    // Touch only the engine module (like `make` after one file edit).
    let recompiled = project.update_source(
        "engine",
        r#"
        global rate: int = 5;
        fn step(x: int) -> int { return (x * rate + 2) % 9973; }
        "#,
    )?;
    println!(
        "after edit: recompiled engine = {recompiled}, total frontend compiles = {}",
        project.recompiles()
    );

    // Rebuild with the OLD profile: §6.2's stale-profile tolerance —
    // the compiler correlates what still matches and carries on.
    let v2 = project.build(&BuildOptions::new(OptLevel::O4).with_profile_db(db))?;
    let r2 = v2.run(&workload)?;
    println!(
        "v2 (stale profile): {} cycles, returned {} (different code, still optimized: {} inlines)",
        r2.cycles, r2.returned, v2.report.hlo.inlines
    );
    assert_ne!(r1.returned, r2.returned, "the edit changed behaviour");

    // Unchanged sources never recompile.
    let again = project.update_source(
        "app",
        r#"
        extern fn step(x: int) -> int;
        fn main() -> int {
            var n: int = input();
            var acc: int = 1;
            var i: int = 0;
            while (i < n) { acc = step(acc); i = i + 1; }
            output(acc);
            return acc;
        }
        "#,
    )?;
    println!("re-adding identical app source: recompiled = {again}");
    Ok(())
}
