//! The ISV shipping pipeline (§2, §6.4): build a large multi-module,
//! mixed-language application the way HP shipped its MCAD vendors'
//! products — train, select, cross-module optimize under a memory
//! budget, and verify behaviour is unchanged.
//!
//! Run with `cargo run --release --example mcad_pipeline`.

use cmo::{BuildOptions, Compiler, NaimConfig, OptLevel};
use cmo_synth::{generate, mcad_preset};

fn main() -> Result<(), cmo::BuildError> {
    // A scaled-down Mcad2: mixed C-flavored and Fortran-flavored
    // modules (HLO neither knows nor cares, §3).
    let app = generate(&mcad_preset("mcad2", 0.5));
    let f77 = app
        .modules
        .iter()
        .filter(|(_, s)| s.contains("f77-flavored"))
        .count();
    println!(
        "{}: {} modules ({} Fortran-flavored), {} source lines",
        app.name,
        app.modules.len(),
        f77,
        app.total_lines
    );

    let mut cc = Compiler::new();
    for (name, source) in &app.modules {
        cc.add_source(name, source)?;
    }

    // Train on the training workload.
    let instrumented = cc.build(&BuildOptions::instrumented())?;
    let db = instrumented.run_for_profile(&app.train_input)?;

    // Ship build: +O4 +P, 20% call-site selectivity, 8 MiB optimizer
    // budget (NAIM engages if the program outgrows it).
    let ship_opts = BuildOptions::new(OptLevel::O4)
        .with_profile_db(db.clone())
        .with_selectivity(20.0)
        .with_naim(NaimConfig::with_budget(8 << 20));
    let ship = cc.build(&ship_opts)?;
    let report = &ship.report;
    println!(
        "selective CMO: {}/{} modules selected ({:.0}% of source lines)",
        report.cmo_modules,
        report.total_modules,
        100.0 * report.cmo_loc as f64 / report.total_loc as f64
    );
    println!(
        "HLO: {} inlines, {} globals folded, {} dead stores removed, {} dead routines",
        report.hlo.inlines,
        report.hlo.globals_folded,
        report.hlo.dead_stores_removed,
        report.hlo.dead_routines
    );
    println!(
        "optimizer peak memory: {} KiB (loader: {} compactions, {} offloads)",
        report.peak_memory.peak_total / 1024,
        report.loader.compactions,
        report.loader.offload_writes
    );

    // Benchmark against the default build on the reference workload.
    let baseline = cc.build(&BuildOptions::o2())?;
    let rb = baseline.run(&app.ref_input)?;
    let rs = ship.run(&app.ref_input)?;
    assert_eq!(
        rb.checksum, rs.checksum,
        "shipping build must behave identically"
    );
    println!(
        "reference run: +O2 {} cycles, ship {} cycles — {:.2}x",
        rb.cycles,
        rs.cycles,
        rb.cycles as f64 / rs.cycles as f64
    );
    Ok(())
}
