//! NAIM explorer: watch the loader manage transitory pools directly.
//!
//! Uses the `cmo-naim` API on real routine IR to show the §4 machinery:
//! pools moving between expanded, unload-pending (cached), compacted,
//! and offloaded states as the memory thresholds engage; the time/space
//! ledger; and the cache rescue that makes re-touching a pending pool
//! free.
//!
//! Run with `cargo run --release --example naim_explorer`.

use cmo_frontend::compile_module;
use cmo_ir::{link_objects, Transitory};
use cmo_naim::{Loader, MemClass, NaimConfig, PoolKind, PoolState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build some real routine IR to put in pools.
    let mut objects = Vec::new();
    for m in 0..24 {
        let src = format!(
            r#"
            static tab_{m}: int[128] = [1, 2, 3];
            fn work_{m}(x: int) -> int {{
                var acc: int = x;
                var i: int = 0;
                while (i < 10) {{
                    acc = acc + tab_{m}[acc % 128] + i * {m};
                    i = i + 1;
                }}
                return acc;
            }}
            "#
        );
        objects.push(compile_module(&format!("m{m}"), &src)?);
    }
    let unit = link_objects(objects)?;

    // A deliberately tiny budget so every NAIM measure engages.
    let config = NaimConfig::with_budget(24 * 1024);
    println!(
        "budget {} B; thresholds: IR compaction at {:.0}%, symbol tables at {:.0}%, offload at {:.0}%",
        config.budget_bytes,
        config.thresholds.ir_compaction * 100.0,
        config.thresholds.st_compaction * 100.0,
        config.thresholds.offload * 100.0
    );
    let mut loader: Loader<Transitory> = Loader::new(config);

    let mut pools = Vec::new();
    for (i, body) in unit.bodies.iter().enumerate() {
        let id = loader.insert(Transitory::Routine(body.clone()), PoolKind::Ir);
        loader.unload(id)?;
        pools.push(id);
        if i % 6 == 5 {
            let (expanded, pending, compact, offloaded) = loader.census();
            println!(
                "after {:>2} pools: {:>2} expanded, {:>2} pending, {:>2} compact, {:>2} offloaded — {}",
                i + 1,
                expanded,
                pending,
                compact,
                offloaded,
                loader.memory()
            );
        }
    }

    // Touch an old pool: it must come back transparently.
    let victim = pools[0];
    println!("\npool 0 is now {:?}", loader.state(victim));
    let body = loader.get(victim)?.routine();
    println!(
        "reloaded pool 0 transparently: {} blocks, {} instrs",
        body.blocks.len(),
        body.instr_count()
    );

    // Touch a pending pool: the paper's cache rescue, zero work.
    let last = *pools.last().expect("pools nonempty");
    loader.unload(last)?;
    let before = loader.stats();
    loader.touch(last)?;
    let after = loader.stats();
    println!(
        "cache rescue of a pending pool: +{} rescues, +{} uncompactions",
        after.cache_rescues - before.cache_rescues,
        after.uncompactions - before.uncompactions
    );

    let stats = loader.stats();
    println!(
        "\nledger: {} compactions, {} re-expansions, {} offload writes,",
        stats.compactions, stats.uncompactions, stats.offload_writes
    );
    println!(
        "        {} bytes swizzled, {} bytes to/from disk, {} work units",
        stats.bytes_swizzled, stats.bytes_offloaded, stats.work_units
    );
    println!(
        "final accounting: {} (global class holds {} B of program symbol table)",
        loader.memory(),
        loader.memory().class(MemClass::Global)
    );
    assert!(matches!(
        loader.state(victim),
        PoolState::Expanded | PoolState::UnloadPending
    ));
    Ok(())
}
