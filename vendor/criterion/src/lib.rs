//! Offline stand-in for the subset of the `criterion` 0.5 API used by
//! this workspace (the container has no network access to crates.io).
//!
//! Supports [`Criterion`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark runs a small fixed number of timed
//! iterations and prints mean wall time per iteration — enough to
//! compile and smoke-run `cargo bench`, without criterion's
//! statistics, sampling, or HTML reports.

use std::time::Instant;

/// Re-export of `std::hint::black_box`, criterion's public name for it.
pub use std::hint::black_box;

/// How per-iteration setup data is batched in
/// [`Bencher::iter_batched`]. The stand-in runs one setup per timed
/// iteration regardless of variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u32,
    total_nanos: u128,
    timed_iters: u64,
}

impl Bencher {
    fn new(iters: u32) -> Self {
        Bencher {
            iters,
            total_nanos: 0,
            timed_iters: 0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.timed_iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.timed_iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.timed_iters > 0 {
            let mean = self.total_nanos / u128::from(self.timed_iters);
            println!(
                "bench {name:<40} {mean:>12} ns/iter ({} iters)",
                self.timed_iters
            );
        } else {
            println!("bench {name:<40} (no iterations run)");
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u32,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point matching `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: u32,
}

impl Criterion {
    fn effective_samples(&self) -> u32 {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Sets the default iteration count for subsequent benchmarks.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_samples();
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        b.report(id);
        self
    }

    /// Finalizes the run (no-op; present for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group runner, as in criterion 0.5.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(4).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_uses_setup_values() {
        let mut c = Criterion::default();
        let mut total = 0u64;
        c.bench_function("sum", |b| {
            b.iter_batched(|| 2u64, |v| total += v, BatchSize::LargeInput);
        });
        assert_eq!(total, 20); // default 10 samples * 2
    }
}
