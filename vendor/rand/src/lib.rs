//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace (the container has no network access to crates.io).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64,
//! fully deterministic from `seed_from_u64`), the [`Rng`] extension
//! trait with `gen`, `gen_range`, and `gen_bool`, and [`SeedableRng`].
//! The generated streams differ from upstream `rand`, but every
//! consumer in this repository only requires determinism for a fixed
//! seed, which this implementation guarantees on every platform.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full range
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly between two bounds.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely
/// enough that range impls can stay generic over the element type —
/// which is what lets integer-literal ranges (`0..5`) unify with the
/// surrounding usage context instead of defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `[lo, hi)` (`[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span =
                    (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full range.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
