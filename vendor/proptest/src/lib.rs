//! Offline stand-in for the subset of the `proptest` 1.x API used by
//! this workspace (the container has no network access to crates.io).
//!
//! Implements randomized property testing with the same surface the
//! repository's tests use — [`proptest!`], [`prop_compose!`],
//! [`prop_oneof!`], [`prop_assert!`]/[`prop_assert_eq!`], the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! ranges / tuples / `Vec` as strategies, [`collection::vec`],
//! [`option::of`], [`arbitrary::any`], and a small regex-subset string
//! strategy — but with no shrinking. Case generation is deterministic:
//! the RNG is seeded from the test's name, so a failing case fails
//! identically on every run and every platform.

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic xoshiro256++ RNG used to generate cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates an RNG seeded from a test name (FNV-1a hash).
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut state = h;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[lo, hi]` (inclusive).
        pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Boxes a strategy for use in heterogeneous unions.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A uniform choice among boxed strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `arms`; must be non-empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String strategy over a small regex subset: one atom — `\PC`
    /// (printable character) or a `[...]` character class with ranges
    /// and `\n`/`\t`/`\\` escapes — followed by a `{min,max}`
    /// repetition count.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_pattern(self);
            let len = rng.size_in(min, max);
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
            out
        }
    }

    struct Pattern(PhantomData<()>);

    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let _ = Pattern(PhantomData);
        let bytes: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut class: Vec<char> = Vec::new();
        if pat.starts_with("\\PC") {
            // Printable characters: ASCII printable plus a few
            // multi-byte code points to exercise UTF-8 handling.
            class.extend((0x20u8..0x7f).map(char::from));
            class.extend(['é', 'λ', '中', '🦀']);
            i = 3;
        } else if bytes.first() == Some(&'[') {
            i += 1;
            while i < bytes.len() && bytes[i] != ']' {
                let c = match bytes[i] {
                    '\\' => {
                        i += 1;
                        match bytes.get(i) {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some(&e) => e,
                            None => panic!("bad pattern {pat:?}: trailing backslash"),
                        }
                    }
                    c => c,
                };
                if bytes.get(i + 1) == Some(&'-') && bytes.get(i + 2).is_some_and(|&e| e != ']') {
                    let end = bytes[i + 2];
                    assert!(c <= end, "bad range in pattern {pat:?}");
                    class.extend((c..=end).filter(|ch| ch.is_ascii() || *ch == c));
                    i += 3;
                } else {
                    class.push(c);
                    i += 1;
                }
            }
            assert!(bytes.get(i) == Some(&']'), "unterminated class in {pat:?}");
            i += 1;
        } else {
            panic!("unsupported pattern {pat:?}: expected \\PC or [..]");
        }
        assert!(!class.is_empty(), "empty character class in {pat:?}");
        let rest: String = bytes[i..].iter().collect();
        let (min, max) = parse_repeat(&rest, pat);
        (class, min, max)
    }

    fn parse_repeat(rest: &str, pat: &str) -> (usize, usize) {
        if rest.is_empty() {
            return (1, 1);
        }
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
        match inner.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad repeat min"),
                hi.trim().parse().expect("bad repeat max"),
            ),
            None => {
                let n = inner.trim().parse().expect("bad repeat count");
                (n, n)
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range generation for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Raw bit patterns: exercises NaN, infinities, and
            // subnormals in round-trip encoding tests.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.size_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // 3-in-4 Some, matching upstream's Some-biased default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Option<T>` strategy: mostly `Some`, sometimes `None`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Composes strategies into a named strategy-returning function, with
/// an optional second parameter list for dependent generation.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        fn $name:ident($($param:tt)*)
            ($($a1:ident in $s1:expr),* $(,)?)
            ($($a2:ident in $s2:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_flat_map(
                ($($s1,)*),
                move |($($a1,)*)| {
                    $crate::strategy::Strategy::prop_map(
                        ($($s2,)*),
                        move |($($a2,)*)| $body,
                    )
                },
            )
        }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($param:tt)*)
            ($($a1:ident in $s1:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($s1,)*), move |($($a1,)*)| $body)
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking is performed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(i64),
        B,
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0i64..5, 1usize..4)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && pair.1 >= 1 && pair.1 < 4);
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![
            (0i64..100).prop_map(Tag::A),
            Just(Tag::B),
        ]) {
            match t {
                Tag::A(v) => prop_assert!((0..100).contains(&v)),
                Tag::B => {}
            }
        }

        #[test]
        fn collections_and_strings(
            v in crate::collection::vec(any::<u8>(), 0..10),
            s in "[a-z]{1,8}",
            p in "\\PC{0,20}",
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(p.chars().count() <= 20);
        }
    }

    prop_compose! {
        fn sized_list()(n in 1usize..5)(
            items in crate::collection::vec(any::<i64>(), n..=n),
            flag in any::<bool>(),
        ) -> (Vec<i64>, bool) {
            (items, flag)
        }
    }

    proptest! {
        #[test]
        fn composed_dependent_sizes(list in sized_list()) {
            let (items, _) = list;
            prop_assert!(!items.is_empty() && items.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 3..6);
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
