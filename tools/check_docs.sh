#!/usr/bin/env bash
# Runs every cmocc invocation documented in README.md against the MLC
# sources in examples/mlc/, so the docs cannot drift from the CLI.
#
# Usage: tools/check_docs.sh [path-to-cmocc]
#
# Builds target/release/cmocc when no binary is given. Exits non-zero
# on the first invocation that fails or documented claim that does not
# hold (warm-cache report replay, mmap on/off byte identity).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cmocc="${1:-}"
if [[ -z "$cmocc" ]]; then
    (cd "$repo_root" && cargo build --release -p cmo --quiet)
    cmocc="$repo_root/target/release/cmocc"
fi
cmocc="$(cd "$(dirname "$cmocc")" && pwd)/$(basename "$cmocc")"
[[ -x "$cmocc" ]] || { echo "check_docs: $cmocc is not executable" >&2; exit 1; }

work="$(mktemp -d)"
daemon_pid=""
trap '[[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null; rm -rf "$work"' EXIT
cp "$repo_root"/examples/mlc/*.mlc "$work/"
cd "$work"

step=0
run() {
    step=$((step + 1))
    echo "check_docs [$step]: cmocc $*"
    "$cmocc" "$@"
}

# --- Quickstart: separate compilation, train, ship, parallel build ---
run -c lib.mlc app.mlc
[[ -f lib.cmo && -f app.cmo ]] || { echo "check_docs: -c did not emit .cmo objects" >&2; exit 1; }
run +I --run 500 --profile-out train.db lib.cmo app.cmo
[[ -f train.db ]] || { echo "check_docs: training did not write train.db" >&2; exit 1; }
run +O4 +P train.db --report --run 500 lib.cmo app.cmo
run -j4 +O4 --report --run 500 lib.cmo app.cmo

# --- Structured telemetry: --report-json / --trace ---
run +O4 +P train.db --report-json r.json --trace t.jsonl lib.cmo app.cmo
grep -q '"cmo.report.v1"' r.json || { echo "check_docs: r.json missing cmo.report.v1 schema" >&2; exit 1; }
grep -q '"cmo.trace.v1"' t.jsonl || { echo "check_docs: t.jsonl missing cmo.trace.v1 schema" >&2; exit 1; }

# --- Incremental recompilation: --cache-dir cold then warm ---
run +O4 --cache-dir .cmo-cache --report-json cold.json lib.mlc app.mlc
run +O4 --cache-dir .cmo-cache --report-json warm.json lib.mlc app.mlc
cmp cold.json warm.json || { echo "check_docs: warm cache report differs from cold" >&2; exit 1; }
[[ -f .cmo-cache/repo.naim && -f .cmo-cache/manifest.tsv ]] \
    || { echo "check_docs: cache dir missing repo.naim/manifest.tsv" >&2; exit 1; }

# --- Zero-copy toggle: --no-mmap must not change the report ---
run +O4 --cache-dir .cmo-cache-plain --no-mmap --report-json plain.json lib.mlc app.mlc
cmp cold.json plain.json || { echo "check_docs: --no-mmap changed the report" >&2; exit 1; }

# --- Cache compaction: --gc-cache shrinks repo.naim, replay intact ---
before=$(wc -c < .cmo-cache/repo.naim)
run --gc-cache --cache-dir .cmo-cache
after=$(wc -c < .cmo-cache/repo.naim)
[[ $after -lt $before ]] \
    || { echo "check_docs: --gc-cache did not shrink repo.naim ($before -> $after)" >&2; exit 1; }
run +O4 --cache-dir .cmo-cache --report-json gc-warm.json lib.mlc app.mlc
cmp cold.json gc-warm.json || { echo "check_docs: post-gc warm report differs from cold" >&2; exit 1; }

# --- Declined mmap (CMO_NO_MMAP=1) must not change the report ---
step=$((step + 1))
echo "check_docs [$step]: CMO_NO_MMAP=1 cmocc +O4 --cache-dir .cmo-cache-nomap --report-json nomap.json lib.mlc app.mlc"
env CMO_NO_MMAP=1 "$cmocc" +O4 --cache-dir .cmo-cache-nomap --report-json nomap.json lib.mlc app.mlc
cmp cold.json nomap.json || { echo "check_docs: CMO_NO_MMAP=1 changed the report" >&2; exit 1; }

# --- Profile slices: retrain keeps unaffected modules' entries warm ---
run -c util.mlc hot.mlc prog.mlc
run +I --run 50 --profile-out rt-train.db util.cmo hot.cmo prog.cmo
run +O4 +P rt-train.db --cache-dir .cmo-cache-rt --report-json rt-cold.json util.mlc hot.mlc prog.mlc
run +I --run 500 --profile-out rt-retrain.db util.cmo hot.cmo prog.cmo
rt_warm="$("$cmocc" +O4 +P rt-retrain.db --cache-dir .cmo-cache-rt --report util.mlc hot.mlc prog.mlc)"
step=$((step + 1))
echo "check_docs [$step]: cmocc +O4 +P rt-retrain.db --cache-dir .cmo-cache-rt --report util.mlc hot.mlc prog.mlc"
grep -q '2 module hits, 1 misses' <<< "$rt_warm" \
    || { echo "check_docs: retrain-warm build did not retain 2 of 3 module entries" >&2; exit 1; }
grep -q '3 planned, 0 stale, 2 retained hits' <<< "$rt_warm" \
    || { echo "check_docs: retrain-warm profile-slice line differs from README" >&2; exit 1; }

# --- Shared remote cache: cold through the daemon, dead-daemon build
# --- degrades but succeeds, fresh machine replays warm from the daemon
cmocached="$(dirname "$cmocc")/cmocached"
[[ -x "$cmocached" ]] || { echo "check_docs: $cmocached is not executable (built alongside cmocc)" >&2; exit 1; }
"$cmocached" --store daemon-store --listen 127.0.0.1:0 > daemon.out &
daemon_pid=$!
for _ in $(seq 50); do grep -q 'listening on' daemon.out 2>/dev/null && break; sleep 0.1; done
addr="$(sed -n 's/^listening on //p' daemon.out)"
[[ -n "$addr" ]] || { echo "check_docs: cmocached never reported its address" >&2; exit 1; }
run +O4 --cache-dir .cmo-cache-r1 --remote-cache "$addr" --report-json rc-cold.json lib.mlc app.mlc
run +O4 --cache-dir .cmo-cache-r2 --remote-cache "$addr" --report-json rc-warm.json lib.mlc app.mlc
cmp rc-cold.json rc-warm.json || { echo "check_docs: remote-warm report differs from cold" >&2; exit 1; }
kill "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true; daemon_pid=""
run +O4 --cache-dir .cmo-cache-r3 --remote-cache "$addr" --remote-timeout-ms 200 --remote-retries 1 --report-json rc-dead.json lib.mlc app.mlc
grep -q '"breaker_open": true' rc-dead.json \
    || { echo "check_docs: dead-daemon build did not record the demotion" >&2; exit 1; }

# --- --no-cache conflicts with --cache-dir (usage error, exit 2) ---
set +e
"$cmocc" +O4 --no-cache --cache-dir .cmo-cache lib.mlc app.mlc 2>/dev/null
rc=$?
set -e
[[ $rc -eq 2 ]] || { echo "check_docs: --no-cache with --cache-dir should exit 2, got $rc" >&2; exit 1; }

echo "check_docs: all $step documented invocations behave as described"
