//! Shared experiment harness for the examples, integration tests, and
//! figure-regeneration binaries.
//!
//! Encapsulates the paper's measurement methodology (§2): train an
//! instrumented `+O2 +I` build on the *training* input, then build at
//! each optimization level and run on the *reference* input, reporting
//! cycles relative to the `+O2` baseline.

use cmo::{BuildError, BuildOptions, Compiler, OptLevel, ProfileDb};
use cmo_synth::SynthApp;

/// Makes a driver loaded with every module of `app`.
///
/// # Errors
///
/// Propagates frontend diagnostics (a generator bug if it ever fires).
pub fn compiler_for(app: &SynthApp) -> Result<Compiler, BuildError> {
    let mut cc = Compiler::new();
    for (name, source) in &app.modules {
        cc.add_source(name, source)?;
    }
    Ok(cc)
}

/// Trains a profile: instrumented `+O2 +I` build, one run on the
/// training input.
///
/// # Errors
///
/// Propagates build or execution failures.
pub fn train_profile(cc: &Compiler, train_input: &[i64]) -> Result<ProfileDb, BuildError> {
    let instrumented = cc.build(&BuildOptions::instrumented())?;
    instrumented.run_for_profile(train_input)
}

/// Cycle counts at each optimization level on the reference input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCycles {
    /// `+O1` (optimize only within basic blocks).
    pub o1: u64,
    /// `+O2` (the speedup baseline).
    pub o2: u64,
    /// `+O2 +P` (PBO).
    pub o2_pbo: u64,
    /// `+O4` (CMO).
    pub o4: u64,
    /// `+O4 +P` (CMO+PBO).
    pub o4_pbo: u64,
}

impl LevelCycles {
    /// Speedup of `cycles` relative to the `+O2` baseline.
    #[must_use]
    pub fn speedup(&self, cycles: u64) -> f64 {
        self.o2 as f64 / cycles.max(1) as f64
    }
}

/// Builds and measures `app` at `+O1`, `+O2`, `+O2 +P`, `+O4`, and
/// `+O4 +P` (selectivity `sel_percent` for the last), verifying that
/// every configuration produces the same output checksum.
///
/// # Errors
///
/// Propagates build/run failures.
///
/// # Panics
///
/// Panics if any optimized configuration changes observable behaviour —
/// that is a miscompile, the §6.3 scenario.
pub fn measure_levels(app: &SynthApp, sel_percent: f64) -> Result<LevelCycles, BuildError> {
    let cc = compiler_for(app)?;
    let db = train_profile(&cc, &app.train_input)?;

    let run = |opts: &BuildOptions| -> Result<(u64, u64), BuildError> {
        let out = cc.build(opts)?;
        let r = out.run(&app.ref_input)?;
        Ok((r.cycles, r.checksum))
    };

    let (o1, sum1) = run(&BuildOptions::new(OptLevel::O1))?;
    let (o2, sum2) = run(&BuildOptions::o2())?;
    let (o2_pbo, sum2p) = run(&BuildOptions::o2().with_profile_db(db.clone()))?;
    let (o4, sum4) = run(&BuildOptions::new(OptLevel::O4))?;
    let (o4_pbo, sum4p) = run(&BuildOptions::new(OptLevel::O4)
        .with_profile_db(db)
        .with_selectivity(sel_percent))?;

    assert_eq!(sum1, sum2, "O1 vs O2 checksum mismatch: miscompile");
    assert_eq!(sum2, sum2p, "O2+P checksum mismatch: miscompile");
    assert_eq!(sum2, sum4, "O4 checksum mismatch: miscompile");
    assert_eq!(sum2, sum4p, "O4+P checksum mismatch: miscompile");

    Ok(LevelCycles {
        o1,
        o2,
        o2_pbo,
        o4,
        o4_pbo,
    })
}
