#![warn(missing_docs)]
//! Umbrella crate for the *Scalable Cross-Module Optimization*
//! reproduction.
//!
//! This crate re-exports every workspace member under one roof so the
//! root-level examples and integration tests can exercise the whole
//! system. Library users should usually depend on the individual
//! crates — [`cmo`] is the driver facade; the rest are its substrates:
//!
//! * [`cmo_naim`] — the not-all-in-memory loader, compaction, and
//!   repository (§4 of the paper);
//! * [`cmo_ir`] — the common IL, object files, and IL linking (§3);
//! * [`cmo_frontend`] — the MLC language frontend;
//! * [`cmo_profile`] — the PBO profile database (§3, §6.2);
//! * [`cmo_hlo`] — cross-module inlining and interprocedural analysis;
//! * [`cmo_llo`] — local optimization, register allocation, layout;
//! * [`cmo_select`] — profile-driven selectivity (§5);
//! * [`cmo_link`] — image assembly and procedure clustering;
//! * [`cmo_vm`] — the abstract target machine (the PA-8000 stand-in);
//! * [`cmo_synth`] — synthetic SPEC/MCAD-like applications (§2, §6.4).

pub mod harness;

pub use cmo;
pub use cmo_frontend;
pub use cmo_hlo;
pub use cmo_ir;
pub use cmo_link;
pub use cmo_llo;
pub use cmo_naim;
pub use cmo_profile;
pub use cmo_select;
pub use cmo_synth;
pub use cmo_vm;
