//! Integration test: the Figure 1 result *shapes* hold end-to-end.
//!
//! The paper's headline (§2, Figure 1): every program speeds up to
//! some degree at the aggressive levels; CMO+PBO is the best
//! configuration; the big MCAD-style applications benefit at least as
//! much as small benchmarks. We assert the ordering and rough
//! magnitudes, not the paper's absolute numbers (our substrate is a
//! simulator, not a 180 MHz PA-8000).

use cmo_repro::harness::measure_levels;
use cmo_synth::{generate, mcad_preset, spec_preset, SynthSpec};

#[test]
fn small_benchmark_orderings_hold() {
    let app = generate(&spec_preset("compress"));
    let cycles = measure_levels(&app, 100.0).unwrap();

    // O2 beats O1 (global vs block-local optimization).
    assert!(cycles.o2 < cycles.o1, "{cycles:?}");
    // CMO+PBO is the best configuration.
    assert!(cycles.o4_pbo < cycles.o2, "{cycles:?}");
    assert!(cycles.o4_pbo <= cycles.o2_pbo, "{cycles:?}");
    assert!(cycles.o4_pbo <= cycles.o4, "{cycles:?}");
    // Meaningful magnitude: at least a few percent, and sane (< 5x).
    let best = cycles.speedup(cycles.o4_pbo);
    assert!(best > 1.05, "CMO+PBO speedup only {best:.3}: {cycles:?}");
    assert!(best < 5.0, "implausible speedup {best:.3}");
}

#[test]
fn pbo_alone_helps() {
    let app = generate(&spec_preset("li"));
    let cycles = measure_levels(&app, 100.0).unwrap();
    assert!(
        cycles.o2_pbo < cycles.o2,
        "profile-guided layout + clustering should pay: {cycles:?}"
    );
}

#[test]
fn mcad_style_app_gets_large_combined_speedup() {
    // A scaled-down Mcad1; selectivity at 20% of call sites, the
    // paper's sweet spot.
    let app = generate(&mcad_preset("mcad1", 0.25));
    let cycles = measure_levels(&app, 20.0).unwrap();
    let best = cycles.speedup(cycles.o4_pbo);
    assert!(
        best > 1.05,
        "MCAD-style CMO+PBO speedup only {best:.3}: {cycles:?}"
    );
    assert!(cycles.o4_pbo < cycles.o2_pbo, "{cycles:?}");
}

#[test]
fn speedups_are_deterministic() {
    let spec = SynthSpec::small("det", 5);
    let app = generate(&spec);
    let a = measure_levels(&app, 50.0).unwrap();
    let b = measure_levels(&app, 50.0).unwrap();
    assert_eq!(a, b);
}
