//! Differential correctness testing: every optimization configuration
//! must produce observably identical behaviour on randomly generated
//! programs.
//!
//! This is the §6.3 concern turned into a gate: "run-time behaviour
//! differences that appear only when large-scale interprocedural
//! optimizations are deployed are particularly difficult to diagnose" —
//! so we hunt them continuously with random programs. The checksum
//! mixes every `output()` value order-sensitively plus `main`'s return,
//! so any miscompile that changes observable behaviour is caught.

use cmo::{BuildOptions, NaimConfig, OptLevel};
use cmo_repro::harness::{compiler_for, train_profile};
use cmo_synth::{generate, SynthSpec};
use proptest::prelude::*;

fn spec_from(seed: u64, modules: usize, levels: usize, float_frac: f64) -> SynthSpec {
    SynthSpec {
        modules,
        levels,
        float_module_frac: float_frac,
        workload_iters: 200,
        ..SynthSpec::small("diff", seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// O1, O2, O2+P, O4, O4+P (several selectivities) all agree.
    #[test]
    fn all_configurations_agree(
        seed in 0u64..10_000,
        modules in 2usize..6,
        levels in 3usize..7,
        float_frac in 0.0f64..0.7,
        sel in 0.0f64..100.0,
    ) {
        let app = generate(&spec_from(seed, modules, levels, float_frac));
        let cc = compiler_for(&app).unwrap();
        let db = train_profile(&cc, &app.train_input).unwrap();

        let reference = cc
            .build(&BuildOptions::new(OptLevel::O1))
            .unwrap()
            .run(&app.ref_input)
            .unwrap();

        let configs = [
            BuildOptions::o2(),
            BuildOptions::o2().with_profile_db(db.clone()),
            BuildOptions::new(OptLevel::O4),
            BuildOptions::new(OptLevel::O4)
                .with_profile_db(db.clone())
                .with_selectivity(sel),
            BuildOptions::new(OptLevel::O4)
                .with_profile_db(db.clone())
                .with_selectivity(100.0),
        ];
        for (i, opts) in configs.iter().enumerate() {
            let r = cc.build(opts).unwrap().run(&app.ref_input).unwrap();
            prop_assert_eq!(
                r.checksum,
                reference.checksum,
                "config {} diverged on seed {} (returned {} vs {})",
                i,
                seed,
                r.returned,
                reference.returned
            );
        }
    }

    /// NAIM transparency: memory pressure must not change the emitted
    /// image at all — compaction and offloading are lossless, and the
    /// compiler "must behave in exactly the same way ... on a machine
    /// with the same memory configuration" (§6.2). We check something
    /// stronger: the image is identical across *different* memory
    /// configurations.
    #[test]
    fn naim_pressure_is_invisible(
        seed in 0u64..10_000,
        budget_kib in 8usize..64,
    ) {
        let app = generate(&spec_from(seed, 3, 5, 0.2));
        let cc = compiler_for(&app).unwrap();
        let db = train_profile(&cc, &app.train_input).unwrap();

        let roomy = cc
            .build(
                &BuildOptions::new(OptLevel::O4)
                    .with_profile_db(db.clone())
                    .with_naim(NaimConfig::with_budget(1 << 30)),
            )
            .unwrap();
        let tight = cc
            .build(
                &BuildOptions::new(OptLevel::O4)
                    .with_profile_db(db)
                    .with_naim(NaimConfig::with_budget(budget_kib << 10)),
            )
            .unwrap();
        prop_assert_eq!(&roomy.image.code, &tight.image.code);
        prop_assert_eq!(&roomy.image.globals, &tight.image.globals);
    }

    /// Instrumentation transparency: probes must not change behaviour.
    #[test]
    fn instrumentation_is_behaviour_neutral(seed in 0u64..10_000) {
        let app = generate(&spec_from(seed, 3, 5, 0.3));
        let cc = compiler_for(&app).unwrap();
        let plain = cc
            .build(&BuildOptions::o2())
            .unwrap()
            .run(&app.ref_input)
            .unwrap();
        let probed = cc
            .build(&BuildOptions::instrumented())
            .unwrap()
            .run(&app.ref_input)
            .unwrap();
        prop_assert_eq!(plain.checksum, probed.checksum);
        prop_assert!(probed.cycles > plain.cycles, "probes must cost cycles");
    }
}
