//! §6.2 reproducibility: "the compiler must behave in exactly the same
//! way when compiling the same piece of code, using the same profile
//! data, on a machine with the same memory configuration from run to
//! run." Nothing in this system hashes or sorts on addresses; these
//! tests pin that discipline down.

use cmo::{BuildOptions, Compiler, NaimConfig, OptLevel};
use cmo_repro::harness::{compiler_for, train_profile};
use cmo_synth::{generate, spec_preset, SynthSpec};

fn images_equal(a: &cmo::BuildOutput, b: &cmo::BuildOutput) -> bool {
    a.image.code == b.image.code
        && a.image.globals == b.image.globals
        && a.image.entry_routine == b.image.entry_routine
}

#[test]
fn identical_inputs_give_identical_images_at_every_level() {
    let app = generate(&SynthSpec::small("det", 77));
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();
    for opts in [
        BuildOptions::new(OptLevel::O1),
        BuildOptions::o2(),
        BuildOptions::instrumented(),
        BuildOptions::o2().with_profile_db(db.clone()),
        BuildOptions::new(OptLevel::O4),
        BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(30.0),
    ] {
        let a = cc.build(&opts).unwrap();
        let b = cc.build(&opts).unwrap();
        assert!(images_equal(&a, &b), "nondeterministic build at {opts:?}");
        assert_eq!(a.report.hlo, b.report.hlo);
    }
}

#[test]
fn module_registration_order_is_what_matters_not_time() {
    // Two separately constructed compilers with the same sources give
    // identical images.
    let build = || {
        let mut cc = Compiler::new();
        cc.add_source("b", "fn helper(x: int) -> int { return x * 2; }")
            .unwrap();
        cc.add_source(
            "a",
            "extern fn helper(x: int) -> int;\nfn main() -> int { return helper(21); }",
        )
        .unwrap();
        cc.build(&BuildOptions::new(OptLevel::O4)).unwrap()
    };
    let x = build();
    let y = build();
    assert!(images_equal(&x, &y));
}

#[test]
fn profile_runs_are_deterministic() {
    let app = generate(&spec_preset("compress"));
    let cc = compiler_for(&app).unwrap();
    let a = train_profile(&cc, &app.train_input).unwrap();
    let b = train_profile(&cc, &app.train_input).unwrap();
    assert_eq!(a, b, "profile collection must be reproducible");
}

#[test]
fn naim_memory_configuration_changes_nothing_but_effort() {
    let app = generate(&SynthSpec::small("naim-det", 5));
    let cc = compiler_for(&app).unwrap();
    let roomy = cc
        .build(&BuildOptions::new(OptLevel::O4).with_naim(NaimConfig::with_budget(1 << 30)))
        .unwrap();
    let tight = cc
        .build(&BuildOptions::new(OptLevel::O4).with_naim(NaimConfig::with_budget(16 << 10)))
        .unwrap();
    assert!(images_equal(&roomy, &tight));
    // The tight build did real NAIM work; the roomy one did none.
    assert!(tight.report.loader.compactions > 0);
    assert_eq!(roomy.report.loader.compactions, 0);
}
