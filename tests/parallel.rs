//! Determinism under parallelism (§6.2 discipline, extended to `-j`):
//! the unified report and the event trace must be byte-identical no
//! matter how many workers ran the build, and a sharded NAIM loader
//! must not change what the compiler produces.
//!
//! CI runs this suite twice with `CMO_TEST_JOBS=1` and `CMO_TEST_JOBS=4`
//! so the "reference" level itself moves; the assertions compare every
//! level against `-j1` directly, so either way nothing may drift.

use cmo::{BuildOptions, NaimConfig, OptLevel, Telemetry};
use cmo_repro::harness::{compiler_for, train_profile};
use cmo_synth::{generate, SynthSpec};

/// Worker counts under test: always 1, 2, and 4, plus whatever CI asks
/// for through `CMO_TEST_JOBS`.
fn jobs_levels() -> Vec<usize> {
    let mut levels = vec![1, 2, 4];
    if let Some(n) = std::env::var("CMO_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 && !levels.contains(&n) {
            levels.push(n);
        }
    }
    levels
}

/// One instrumented build at `jobs` workers; returns (report JSON,
/// trace JSONL, image code) for byte-for-byte comparison.
fn build_at(jobs: usize, shards: usize) -> (String, String, Vec<u8>) {
    let app = generate(&SynthSpec::small("par-det", 23));
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();
    let tel = Telemetry::enabled();
    let mut opts = BuildOptions::new(OptLevel::O4)
        .with_profile_db(db)
        .with_selectivity(40.0)
        .with_naim(NaimConfig::with_budget(64 << 10).shards(shards))
        .with_jobs(jobs);
    opts.telemetry = tel.clone();
    let out = cc.build(&opts).unwrap();
    let code: Vec<u8> = out
        .image
        .code
        .iter()
        .flat_map(|w| format!("{w:?};").into_bytes())
        .collect();
    (out.compile_report().to_json(), tel.render_trace(), code)
}

#[test]
fn report_and_trace_are_byte_identical_across_jobs() {
    let (report_1, trace_1, code_1) = build_at(1, 1);
    for jobs in jobs_levels() {
        let (report_j, trace_j, code_j) = build_at(jobs, 1);
        assert_eq!(report_1, report_j, "report drifted at -j{jobs}");
        assert_eq!(trace_1, trace_j, "trace drifted at -j{jobs}");
        assert_eq!(code_1, code_j, "image drifted at -j{jobs}");
    }
}

#[test]
fn trace_records_worker_ids_but_sorts_on_the_work_clock() {
    let (_, trace, _) = build_at(4, 1);
    let mut last_work = 0u64;
    let mut saw_worker_field = false;
    for line in trace.lines().skip(1) {
        let work: u64 = line
            .split("\"work\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("trace line without work clock: {line}"));
        assert!(work >= last_work, "trace not sorted on work clock: {line}");
        last_work = work;
        saw_worker_field |= line.contains("\"worker\":");
    }
    assert!(saw_worker_field, "trace lines carry no worker field");
}

#[test]
fn sharded_loader_does_not_change_the_build() {
    let (_, _, code_one_shard) = build_at(1, 1);
    for shards in [2, 4] {
        for jobs in jobs_levels() {
            let (report, trace, code) = build_at(jobs, shards);
            assert_eq!(
                code_one_shard, code,
                "image drifted at {shards} shards, -j{jobs}"
            );
            // At a fixed shard count the full telemetry must also be
            // reproducible run-to-run and across worker counts.
            let (report_again, trace_again, _) = build_at(jobs, shards);
            assert_eq!(report, report_again, "report unstable at {shards} shards");
            assert_eq!(trace, trace_again, "trace unstable at {shards} shards");
        }
    }
}

/// A hand-written program whose call graph partitions into several
/// independent clusters: two "families" (a big root plus a small
/// helper each) whose internal edges couple, and a `main` that only
/// makes cross-cluster calls to the big roots — too big to be inline
/// candidates, so the edges stay cross-cluster.
fn multi_cluster_build(jobs: usize) -> (String, String, Vec<u8>) {
    let big_root = |name: &str, helper: &str| {
        let bulk: String = (0..40)
            .map(|i| format!("acc = acc + {} * x;", i + 2))
            .collect::<Vec<_>>()
            .join("\n");
        format!(
            r#"
            static fn {helper}(x: int) -> int {{ return x * 3 + 1; }}
            fn {name}(x: int) -> int {{
                var acc: int = {helper}(x);
                {bulk}
                return acc;
            }}
            "#
        )
    };
    let app = r#"
        extern fn root_a(x: int) -> int;
        extern fn root_b(x: int) -> int;
        fn main() -> int { return root_a(5) + root_b(7); }
    "#;
    let mut cc = cmo::Compiler::new();
    cc.add_source("app", app).unwrap();
    cc.add_source("fam_a", &big_root("root_a", "help_a"))
        .unwrap();
    cc.add_source("fam_b", &big_root("root_b", "help_b"))
        .unwrap();
    let tel = Telemetry::enabled();
    let mut opts = BuildOptions::new(OptLevel::O4).with_jobs(jobs);
    opts.telemetry = tel.clone();
    let out = cc.build(&opts).unwrap();
    let code: Vec<u8> = out
        .image
        .code
        .iter()
        .flat_map(|w| format!("{w:?};").into_bytes())
        .collect();
    (out.compile_report().to_json(), tel.render_trace(), code)
}

#[test]
fn multi_cluster_hlo_is_byte_identical_across_jobs() {
    let (report_1, trace_1, code_1) = multi_cluster_build(1);
    // The fixture must actually exercise the fan-out: the partitioner
    // has to find at least two clusters or this test proves nothing.
    let n_clusters: u64 = report_1
        .split("\"clusters\":")
        .nth(1)
        .and_then(|rest| rest.split("\"count\":").nth(1))
        .and_then(|rest| {
            rest.trim_start()
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|n| n.parse().ok())
        })
        .expect("report carries an hlo.clusters.count field");
    assert!(
        n_clusters >= 2,
        "expected a multi-cluster program, got {n_clusters}"
    );
    assert!(
        trace_1.contains("\"cluster\""),
        "trace records cluster events"
    );
    for jobs in jobs_levels() {
        let (report_j, trace_j, code_j) = multi_cluster_build(jobs);
        assert_eq!(report_1, report_j, "report drifted at -j{jobs}");
        assert_eq!(trace_1, trace_j, "trace drifted at -j{jobs}");
        assert_eq!(code_1, code_j, "image drifted at -j{jobs}");
    }
}

#[test]
fn parallel_frontend_matches_sequential_frontend() {
    let app = generate(&SynthSpec::small("par-fe", 9));
    let modules: Vec<(String, String)> = app.modules.clone();
    let build = |jobs: usize| {
        let mut cc = cmo::Compiler::new();
        cc.add_sources(&modules, jobs).unwrap();
        cc.build(&BuildOptions::new(OptLevel::O4)).unwrap()
    };
    let seq = build(1);
    let par = build(4);
    assert_eq!(seq.image.code, par.image.code);
    assert_eq!(seq.report.hlo, par.report.hlo);
}
