//! Telemetry determinism: the §6.2 reproducibility discipline extended
//! to the observability surface. Two builds of the same sources with
//! the same profile data and the same NAIM budget must produce
//! byte-identical JSON reports and byte-identical event traces — the
//! trace clock is simulated work, never wall time.

use cmo::{BuildOptions, NaimConfig, OptLevel, Telemetry};
use cmo_repro::harness::{compiler_for, train_profile};
use cmo_synth::{generate, SynthSpec};

/// One full +O4 +P build under a tight NAIM budget with telemetry on,
/// returning the serialized report and trace.
fn instrumented_build(seed: u64) -> (String, String) {
    let app = generate(&SynthSpec::small("telemetry", seed));
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();
    let tel = Telemetry::enabled();
    let opts = BuildOptions::new(OptLevel::O4)
        .with_profile_db(db)
        .with_selectivity(40.0)
        .with_naim(NaimConfig::with_budget(24 << 10))
        .with_telemetry(tel.clone());
    let out = cc.build(&opts).unwrap();
    (out.compile_report().to_json(), tel.render_trace())
}

#[test]
fn report_and_trace_are_byte_identical_across_runs() {
    let (report_a, trace_a) = instrumented_build(11);
    let (report_b, trace_b) = instrumented_build(11);
    assert_eq!(report_a, report_b, "JSON report must be deterministic");
    assert_eq!(trace_a, trace_b, "event trace must be deterministic");
}

#[test]
fn report_schema_is_stable() {
    let (report, _) = instrumented_build(12);
    assert!(
        report.starts_with("{\n  \"schema\": \"cmo.report.v1\""),
        "report must lead with its schema version: {report}"
    );
    // Every documented top-level section is present (see METRICS.md).
    for section in [
        "\"selection\"",
        "\"hlo\"",
        "\"loader\"",
        "\"memory\"",
        "\"llo\"",
        "\"image\"",
        "\"work\"",
        "\"phases\"",
    ] {
        assert!(report.contains(section), "missing section {section}");
    }
    // Wall time never reaches the serialized report.
    assert!(!report.contains("wall") && !report.contains("nanos"));
}

#[test]
fn trace_schema_is_stable_and_events_fire() {
    let (_, trace) = instrumented_build(13);
    let mut lines = trace.lines();
    assert_eq!(
        lines.next(),
        Some("{\"schema\":\"cmo.trace.v1\"}"),
        "trace must lead with its schema header"
    );
    // Under a tight budget with selectivity on, every event family the
    // pipeline emits should appear at least once.
    for tag in [
        "\"event\":\"pool\"",
        "\"event\":\"inline\"",
        "\"event\":\"select_site\"",
        "\"event\":\"select_module\"",
    ] {
        assert!(trace.contains(tag), "expected at least one {tag} record");
    }
    // Every record is tagged with the phase that emitted it.
    for line in lines {
        assert!(line.contains("\"work\":"), "untagged record: {line}");
        assert!(line.contains("\"phase\":"), "untagged record: {line}");
    }
}

#[test]
fn phase_timers_nest_and_cover_the_pipeline() {
    let app = generate(&SynthSpec::small("phases", 21));
    let cc = compiler_for(&app).unwrap();
    let tel = Telemetry::enabled();
    let opts = BuildOptions::new(OptLevel::O4).with_telemetry(tel.clone());
    let out = cc.build(&opts).unwrap();
    let names: Vec<String> = out.report.phases.iter().map(|p| p.name.clone()).collect();
    for expected in ["link", "hlo", "hlo.inline", "llo", "link_image"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing phase {expected} in {names:?}"
        );
    }
    for phase in &out.report.phases {
        assert!(
            phase.end_work >= phase.start_work,
            "phase {} runs backwards on the work clock",
            phase.name
        );
    }
}

#[test]
fn disabled_telemetry_records_nothing() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    let app = generate(&SynthSpec::small("silent", 3));
    let cc = compiler_for(&app).unwrap();
    let out = cc
        .build(&BuildOptions::new(OptLevel::O4).with_telemetry(tel.clone()))
        .unwrap();
    assert!(out.report.phases.is_empty());
    assert_eq!(tel.n_events(), 0);
}
