//! Integration tests for §5 (selectivity) and §4 (memory behaviour)
//! claims that span crates.

use cmo::{BuildOptions, NaimConfig, OptLevel};
use cmo_repro::harness::{compiler_for, train_profile};
use cmo_synth::{generate, mcad_preset, SynthSpec};

#[test]
fn selectivity_grows_monotonically_with_percentage() {
    let app = generate(&mcad_preset("mcad1", 0.2));
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();

    let mut prev_loc = 0;
    let mut prev_sites = 0;
    for sel in [0.0, 10.0, 30.0, 60.0, 100.0] {
        let out = cc
            .build(
                &BuildOptions::new(OptLevel::O4)
                    .with_profile_db(db.clone())
                    .with_selectivity(sel),
            )
            .unwrap();
        assert!(
            out.report.cmo_loc >= prev_loc,
            "CMO LoC must grow with the selection percentage"
        );
        assert!(out.report.cmo_modules >= prev_sites);
        prev_loc = out.report.cmo_loc;
        prev_sites = out.report.cmo_modules;
    }
    assert_eq!(prev_loc, app.total_lines, "100% selects everything");
}

#[test]
fn zero_selectivity_bypasses_hlo_transformations() {
    let app = generate(&SynthSpec::small("sel0", 3));
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();
    let out = cc
        .build(
            &BuildOptions::new(OptLevel::O4)
                .with_profile_db(db)
                .with_selectivity(0.0),
        )
        .unwrap();
    assert_eq!(out.report.cmo_modules, 0);
    assert_eq!(out.report.hlo.inlines, 0);
}

#[test]
fn unselective_cmo_exhausts_a_hard_heap_limit() {
    // §5: "we have never been able to compile all of Mcad1 without the
    // help of profile data. Our best attempts exhaust the heap after
    // allocating roughly 1GB." Reproduce with a scaled hard limit and
    // NAIM disabled.
    let app = generate(&mcad_preset("mcad1", 0.2));
    let cc = compiler_for(&app).unwrap();
    let result = cc.build(
        &BuildOptions::new(OptLevel::O4).with_naim(NaimConfig::disabled().hard_limit(200 << 10)),
    );
    assert!(
        matches!(result, Err(cmo::BuildError::Naim(_))),
        "non-selective CMO under a hard heap limit must fail"
    );

    // The same program, same limit, with NAIM enabled: compiles fine.
    let with_naim = cc.build(
        &BuildOptions::new(OptLevel::O4)
            .with_naim(NaimConfig::with_budget(150 << 10).hard_limit(400 << 10)),
    );
    assert!(
        with_naim.is_ok(),
        "NAIM must rescue the same compile: {:?}",
        with_naim.err()
    );
}

#[test]
fn offloading_engages_under_extreme_pressure_and_stays_correct() {
    let app = generate(&SynthSpec::small("squeeze", 9).with_modules(8));
    let cc = compiler_for(&app).unwrap();
    let squeezed = cc
        .build(&BuildOptions::new(OptLevel::O4).with_naim(NaimConfig::with_budget(6 << 10)))
        .unwrap();
    assert!(
        squeezed.report.loader.offload_writes > 0,
        "expected disk offloading: {:?}",
        squeezed.report.loader
    );
    let roomy = cc.build(&BuildOptions::new(OptLevel::O4)).unwrap();
    let a = squeezed.run(&app.ref_input).unwrap();
    let b = roomy.run(&app.ref_input).unwrap();
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn stale_profiles_still_build_and_run_correctly() {
    // §6.2: old profile data keeps working as the code diverges.
    let mut spec = SynthSpec::small("stale", 21);
    let app_v1 = generate(&spec);
    let cc_v1 = compiler_for(&app_v1).unwrap();
    let db_v1 = train_profile(&cc_v1, &app_v1.train_input).unwrap();

    // "Edit" the program: regenerate with a different seed — every
    // routine's shape changes, so all profile entries go stale.
    spec.seed = 22;
    let app_v2 = generate(&spec);
    let cc_v2 = compiler_for(&app_v2).unwrap();

    let stale = cc_v2
        .build(
            &BuildOptions::new(OptLevel::O4)
                .with_profile_db(db_v1)
                .with_selectivity(50.0),
        )
        .unwrap();
    let plain = cc_v2.build(&BuildOptions::o2()).unwrap();
    let rs = stale.run(&app_v2.ref_input).unwrap();
    let rp = plain.run(&app_v2.ref_input).unwrap();
    assert_eq!(
        rs.checksum, rp.checksum,
        "stale profiles must never miscompile"
    );
}

#[test]
fn layered_strategy_builds_and_matches_behaviour() {
    // §8 future work: multi-layered optimization levels.
    let app = generate(&SynthSpec::small("layered", 31));
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();
    let mut opts = BuildOptions::new(OptLevel::O4)
        .with_profile_db(db)
        .with_selectivity(50.0);
    opts.layered = true;
    let layered = cc.build(&opts).unwrap();
    let plain = cc.build(&BuildOptions::o2()).unwrap();
    assert_eq!(
        layered.run(&app.ref_input).unwrap().checksum,
        plain.run(&app.ref_input).unwrap().checksum
    );
}

#[test]
fn mixed_language_modules_inline_into_each_other() {
    // §3: "because HLO works at the IL level, it can freely optimize
    // mixed-language applications."
    let mut spec = SynthSpec::small("mixed", 41);
    spec.float_module_frac = 0.5;
    spec.modules = 6;
    let app = generate(&spec);
    let cc = compiler_for(&app).unwrap();
    let db = train_profile(&cc, &app.train_input).unwrap();
    let out = cc
        .build(
            &BuildOptions::new(OptLevel::O4)
                .with_profile_db(db)
                .with_selectivity(100.0),
        )
        .unwrap();
    assert!(out.report.hlo.inlines > 0);
    let f77 = app
        .modules
        .iter()
        .filter(|(_, s)| s.contains("f77-flavored"))
        .count();
    assert!(f77 >= 1, "fixture must actually be mixed-language");
}
